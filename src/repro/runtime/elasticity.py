"""Elastic fleets: declarative capacity events, autoscaling and load balancing.

The fault machinery of :mod:`repro.network.faults` made *failures* first-class
simulation events; this module does the same for *capacity*.  Production
device–edge–cloud fleets are not fixed: replicas are provisioned under load
and drained when traffic ebbs.  Three pieces cover it:

* :class:`NodeJoin` / :class:`NodeDrain` — declarative timed elasticity
  events collected in an :class:`ElasticitySchedule` (same JSON round-trip /
  ``validate_against`` / ``state_at`` contract as a
  :class:`~repro.network.faults.FaultSchedule`).  A node whose first event is
  a join starts *parked* outside the fleet and accepts work only after its
  provisioning delay elapses; a drain stops new admissions, lets in-flight
  work finish, then takes the node down gracefully — scale-in is a graceful
  NodeDown, so the failover/masking/fingerprint plumbing built for faults
  carries the planning side.
* :class:`Autoscaler` — a reactive policy object the serving engine ticks on
  a fixed cadence.  It watches per-replica utilisation or queue depth over a
  sliding window and emits join/drain decisions for the edge replica group,
  with a cooldown, min/max replica bounds and a provisioning delay.
* :class:`LoadBalancer` policies — round-robin, join-shortest-queue and
  power-of-two-choices — resolving each request's group-bound work to a
  replica at dispatch time.  The classic results apply: JSQ is near-optimal
  but needs global queue state, power-of-two sampling gets most of the
  benefit from two probes.

The schedule and policies are purely declarative; the serving engine of
:mod:`repro.runtime.serving` consumes them as simulation events, and the
planning layer samples :meth:`ElasticitySchedule.state_at` so requests are
planned against the fleet shape in effect at their arrival (through the same
masked-fingerprint plan-cache path degraded deployments use).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import (
    ClassVar,
    Deque,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.network.faults import TimedSchedule

#: Event kinds an elasticity schedule may contain, in serialization spelling.
ELASTICITY_KINDS = ("node_join", "node_drain")

#: Default provisioning delay between a join decision and the node accepting
#: work (container pull + model load + health check, in simulated seconds).
DEFAULT_PROVISION_S = 2.0


class ElasticityError(ValueError):
    """Raised when an elasticity schedule or policy is structurally invalid."""


@dataclass(frozen=True)
class ElasticityEvent:
    """One timed capacity change: at ``time_s``, node ``target`` joins or drains.

    Use the concrete subclasses — :class:`NodeJoin`, :class:`NodeDrain` —
    rather than this base directly.
    """

    time_s: float
    target: str
    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.kind not in ELASTICITY_KINDS:
            raise ElasticityError(
                "abstract ElasticityEvent cannot be scheduled; use NodeJoin/NodeDrain"
            )
        if self.time_s < 0:
            raise ElasticityError(f"elasticity time cannot be negative ({self.time_s})")
        if not self.target:
            raise ElasticityError("elasticity event needs a non-empty target name")

    @property
    def is_join(self) -> bool:
        return self.kind == "node_join"


@dataclass(frozen=True)
class NodeJoin(ElasticityEvent):
    """Node ``target`` is provisioned at ``time_s``.

    The node accepts work from ``time_s + provision_s`` onward.  A target
    whose *first* scheduled event is a join starts parked outside the fleet
    (down from t=0) — declaring spare capacity that exists in the topology
    but is not paid for until it joins.
    """

    provision_s: float = DEFAULT_PROVISION_S
    kind = "node_join"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.provision_s < 0:
            raise ElasticityError(
                f"provisioning delay cannot be negative ({self.provision_s})"
            )

    @property
    def ready_s(self) -> float:
        """The time the joined node starts accepting work."""
        return self.time_s + self.provision_s


class NodeDrain(ElasticityEvent):
    """Node ``target`` drains from ``time_s``: no new work, in-flight work
    finishes, then the node leaves the fleet gracefully (never aborting a
    request, unlike a crash)."""

    kind = "node_drain"


_EVENT_TYPES: Dict[str, type] = {"node_join": NodeJoin, "node_drain": NodeDrain}


class ElasticitySchedule(TimedSchedule):
    """An ordered, validated list of timed elasticity events.

    Join/drain events are idempotent at the engine level: a join for an
    already-active node or a drain for an already-draining/parked one is a
    no-op, and a drain that would empty a tier is refused — so hand-written
    schedules compose with autoscaler decisions without bookkeeping.
    """

    event_base = ElasticityEvent
    kinds = ELASTICITY_KINDS
    error = ElasticityError
    family = "elasticity"

    def __init__(
        self, events: Sequence[ElasticityEvent] = (), name: str = "elasticity"
    ) -> None:
        super().__init__(events, name=name)

    # ------------------------------------------------------------------ #
    def initially_parked(self) -> FrozenSet[str]:
        """Targets whose first event is a join: they start outside the fleet."""
        first_kind: Dict[str, str] = {}
        for event in self.events:
            first_kind.setdefault(event.target, event.kind)
        return frozenset(
            target for target, kind in first_kind.items() if kind == "node_join"
        )

    def state_at(self, time_s: float) -> FrozenSet[str]:
        """Node names *inactive* (parked, provisioning or drained) at ``time_s``.

        A joined node counts as active only once its provisioning delay has
        elapsed; a draining node counts as inactive from the drain instant
        (it stops admitting new work immediately, which is what the planning
        layer cares about).  Events effective exactly at ``time_s`` are
        already applied, matching :meth:`FaultSchedule.state_at`.
        """
        inactive = set(self.initially_parked())
        transitions: List[Tuple[float, int, str, bool]] = []
        for order, event in enumerate(self.events):
            if event.is_join:
                transitions.append((event.ready_s, order, event.target, False))
            else:
                transitions.append((event.time_s, order, event.target, True))
        for effective_s, _, target, down in sorted(transitions):
            if effective_s > time_s:
                break
            if down:
                inactive.add(target)
            else:
                inactive.discard(target)
        return frozenset(inactive)

    def validate_against(self, topology) -> None:
        """Check every event targets a compute node the topology declares."""
        for event in self.events:
            spec = topology.nodes.get(event.target)
            if spec is None:
                raise ElasticityError(
                    f"elasticity schedule {self.name!r} targets unknown node "
                    f"{event.target!r} (topology {topology.name!r})"
                )
            if spec.tier == "relay":
                raise ElasticityError(
                    f"elasticity schedule {self.name!r} targets relay node "
                    f"{event.target!r}; only compute nodes join or drain"
                )

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to the JSON dialect :meth:`from_json` accepts."""
        events = []
        for event in self.events:
            entry: Dict[str, object] = {
                "at": event.time_s,
                "kind": event.kind,
                "target": event.target,
            }
            if event.is_join:
                entry["provision_s"] = event.provision_s
            events.append(entry)
        return json.dumps({"name": self.name, "events": events}, indent=indent)

    @classmethod
    def from_json(cls, data: Union[str, Mapping]) -> "ElasticitySchedule":
        """Parse a schedule from a JSON string or an already-decoded mapping."""
        if isinstance(data, str):
            try:
                payload = json.loads(data)
            except json.JSONDecodeError as error:
                raise ElasticityError(
                    f"invalid elasticity schedule JSON: {error}"
                ) from None
        else:
            payload = dict(data)
        if not isinstance(payload, dict):
            raise ElasticityError("elasticity schedule JSON must be an object")
        events: List[ElasticityEvent] = []
        for entry in payload.get("events", []):
            kind = entry.get("kind")
            if kind not in _EVENT_TYPES:
                raise ElasticityError(
                    f"unknown elasticity kind {kind!r}; expected one of {ELASTICITY_KINDS}"
                )
            if kind == "node_join":
                events.append(
                    NodeJoin(
                        float(entry["at"]),
                        str(entry["target"]),
                        float(entry.get("provision_s", DEFAULT_PROVISION_S)),
                    )
                )
            else:
                events.append(NodeDrain(float(entry["at"]), str(entry["target"])))
        return cls(events, name=str(payload.get("name", "elasticity")))


def load_elasticity_schedule(
    spec: Union[str, ElasticitySchedule], topology=None
) -> ElasticitySchedule:
    """Resolve an elasticity schedule from a spec or pass one through.

    This is what ``repro serve --elasticity`` accepts: a path to a JSON file
    in the dialect of :meth:`ElasticitySchedule.to_json`, or an existing
    :class:`ElasticitySchedule` (returned unchanged, validated when a
    topology is supplied).
    """
    import os

    if isinstance(spec, ElasticitySchedule):
        if topology is not None:
            spec.validate_against(topology)
        return spec
    if isinstance(spec, str) and os.path.exists(spec):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                schedule = ElasticitySchedule.from_json(handle.read())
        except OSError as error:  # pragma: no cover - racy filesystem
            raise ElasticityError(
                f"cannot read elasticity schedule {spec!r}: {error}"
            ) from None
        if topology is not None:
            schedule.validate_against(topology)
        return schedule
    raise ElasticityError(
        f"unknown elasticity schedule {spec!r}: not a readable JSON file"
    )


# --------------------------------------------------------------------------- #
# Load balancing
# --------------------------------------------------------------------------- #
#: Balancer policies understood by :func:`resolve_balancer`.
BALANCER_NAMES = ("rr", "jsq", "p2c")


def _queue_depth(member) -> int:
    """Outstanding work at a replica: queued tasks plus the one in service."""
    return len(member.queue) + (1 if member.busy else 0)


class LoadBalancer:
    """Pluggable policy resolving a request's group-bound work to a replica.

    ``members`` are the serving engine's per-node states (exposing ``node``,
    ``queue`` and ``busy``) for the live, non-draining members of the replica
    group, in topology declaration order.  ``choose`` is called once per
    request — the request's whole group-bound stage sticks to the chosen
    replica, so consecutive layers never ping-pong between members.
    """

    name: ClassVar[str] = ""

    def reset(self) -> None:
        """Return to the initial state (called once per simulation run)."""

    def choose(self, members: Sequence, time_s: float):
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    """Cycle through members in declaration order, oblivious to load."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, members: Sequence, time_s: float):
        member = members[self._next % len(members)]
        self._next += 1
        return member


class JoinShortestQueueBalancer(LoadBalancer):
    """Send each request to the member with the least outstanding work.

    Optimal-ish but needs global queue state; ties break toward the earliest
    member in declaration order.
    """

    name = "jsq"

    def choose(self, members: Sequence, time_s: float):
        # Hand-rolled min with an early exit: depth can't go below zero and
        # ties break toward the earliest member, so an idle member ends the
        # scan — and an idle *first* member (the steady-state case on an
        # unsaturated group) never starts it.
        best = members[0]
        best_depth = len(best.queue) + (1 if best.busy else 0)
        if best_depth:
            for member in members[1:]:
                depth = len(member.queue) + (1 if member.busy else 0)
                if depth < best_depth:
                    best = member
                    best_depth = depth
                    if not depth:
                        break
        return best


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random members, pick the less loaded (power of two choices).

    Mitzenmacher's classic result: two random probes get exponentially close
    to JSQ's tail behaviour without global state.  Seeded, so runs are
    reproducible artefacts like everything else in the simulator.
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def choose(self, members: Sequence, time_s: float):
        count = len(members)
        if count == 1:
            return members[0]
        first, second = self._rng.choice(count, size=2, replace=False)
        a, b = members[int(first)], members[int(second)]
        if _queue_depth(b) < _queue_depth(a):
            return b
        return a


_BALANCERS: Dict[str, type] = {
    "rr": RoundRobinBalancer,
    "jsq": JoinShortestQueueBalancer,
    "p2c": PowerOfTwoBalancer,
}


def resolve_balancer(spec: Union[str, LoadBalancer, None] = None) -> LoadBalancer:
    """Resolve a balancer policy from a name, pass an instance through.

    ``None`` resolves to round-robin, the oblivious default.
    """
    if spec is None:
        return RoundRobinBalancer()
    if isinstance(spec, LoadBalancer):
        return spec
    if isinstance(spec, str):
        try:
            return _BALANCERS[spec]()
        except KeyError:
            raise ElasticityError(
                f"unknown balancer {spec!r}; expected one of {BALANCER_NAMES}"
            ) from None
    raise ElasticityError(f"not a balancer spec: {spec!r}")


# --------------------------------------------------------------------------- #
# Autoscaling
# --------------------------------------------------------------------------- #
#: Autoscaler policies understood by :func:`resolve_autoscaler`.
AUTOSCALER_POLICIES = ("target-util", "queue-threshold")

#: Default (scale_up_at, scale_down_at) thresholds per policy.  target-util
#: watches the mean busy fraction of active replicas; queue-threshold watches
#: the mean outstanding work (queued + in service) per replica.
_DEFAULT_THRESHOLDS = {
    "target-util": (0.75, 0.30),
    "queue-threshold": (3.0, 0.5),
}


@dataclass
class Autoscaler:
    """Reactive scaling policy over the edge replica group.

    The serving engine ticks :meth:`decide` every ``interval_s`` of simulated
    time with the group's mean utilisation and queue depth since the last
    tick.  Samples are smoothed over a sliding ``window`` of ticks; a
    decision fires when the smoothed metric crosses a threshold, subject to a
    ``cooldown_s`` between decisions and the ``min_replicas`` /
    ``max_replicas`` bounds.  Scale-ups pay ``provision_s`` before the new
    replica accepts work; scale-downs drain gracefully.

    ``initial_replicas`` sets how many members start active (the rest start
    parked); it defaults to ``min_replicas`` so an idle fleet starts small.
    """

    policy: str = "target-util"
    interval_s: float = 0.5
    window: int = 4
    scale_up_at: Optional[float] = None
    scale_down_at: Optional[float] = None
    cooldown_s: float = 2.0
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    initial_replicas: Optional[int] = None
    provision_s: float = DEFAULT_PROVISION_S

    def __post_init__(self) -> None:
        if self.policy not in AUTOSCALER_POLICIES:
            raise ElasticityError(
                f"unknown autoscaler policy {self.policy!r}; "
                f"expected one of {AUTOSCALER_POLICIES}"
            )
        if self.interval_s <= 0:
            raise ElasticityError("autoscaler interval must be positive")
        if self.window < 1:
            raise ElasticityError("autoscaler window must be at least 1 tick")
        if self.cooldown_s < 0:
            raise ElasticityError("autoscaler cooldown cannot be negative")
        if self.min_replicas < 1:
            raise ElasticityError("autoscaler needs at least one replica")
        if self.max_replicas is not None and self.max_replicas < self.min_replicas:
            raise ElasticityError("max_replicas cannot be below min_replicas")
        if self.initial_replicas is not None and self.initial_replicas < 1:
            raise ElasticityError("initial_replicas must be at least 1")
        if self.provision_s < 0:
            raise ElasticityError("provisioning delay cannot be negative")
        up_default, down_default = _DEFAULT_THRESHOLDS[self.policy]
        if self.scale_up_at is None:
            self.scale_up_at = up_default
        if self.scale_down_at is None:
            self.scale_down_at = down_default
        if self.scale_down_at >= self.scale_up_at:
            raise ElasticityError(
                f"scale_down_at ({self.scale_down_at}) must be below "
                f"scale_up_at ({self.scale_up_at})"
            )
        self._samples: Deque[float] = deque(maxlen=self.window)
        self._last_scale_s: Optional[float] = None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Reset the sliding window and cooldown (once per simulation run)."""
        self._samples = deque(maxlen=self.window)
        self._last_scale_s = None

    def initial_active(self, group_size: int) -> int:
        """How many group members start active for a group of ``group_size``."""
        start = self.initial_replicas if self.initial_replicas is not None else self.min_replicas
        cap = group_size if self.max_replicas is None else min(self.max_replicas, group_size)
        return max(1, min(start, cap))

    def decide(
        self,
        utilisation: float,
        queue_depth: float,
        active: int,
        spare: int,
        time_s: float,
    ) -> Optional[str]:
        """One tick: return ``"up"``, ``"down"`` or ``None``.

        ``active`` counts live non-draining members, ``spare`` counts parked
        or drained members available to join.
        """
        metric = utilisation if self.policy == "target-util" else queue_depth
        self._samples.append(metric)
        if (
            self._last_scale_s is not None
            and time_s - self._last_scale_s < self.cooldown_s
        ):
            return None
        smoothed = sum(self._samples) / len(self._samples)
        if (
            smoothed > self.scale_up_at
            and spare > 0
            and (self.max_replicas is None or active < self.max_replicas)
        ):
            self._last_scale_s = time_s
            self._samples.clear()
            return "up"
        if smoothed < self.scale_down_at and active > self.min_replicas:
            self._last_scale_s = time_s
            self._samples.clear()
            return "down"
        return None


def resolve_autoscaler(
    spec: Union[str, Autoscaler, None]
) -> Optional[Autoscaler]:
    """Resolve an autoscaler from a policy name, pass an instance through."""
    if spec is None or isinstance(spec, Autoscaler):
        return spec
    if isinstance(spec, str):
        return Autoscaler(policy=spec)
    raise ElasticityError(f"not an autoscaler spec: {spec!r}")
