"""``python -m repro.testing`` — golden-trace maintenance commands."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.testing import GOLDENS_DIR, write_goldens


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Maintenance commands for the golden-trace regression fixtures.",
    )
    sub = parser.add_subparsers(dest="command")
    regen = sub.add_parser(
        "regen-goldens",
        help="re-run the canonical serving scenarios and rewrite the committed fixtures",
    )
    regen.add_argument(
        "--out",
        type=Path,
        default=GOLDENS_DIR,
        help=f"fixture directory (default: {GOLDENS_DIR}, i.e. run from the repo root)",
    )
    args = parser.parse_args(argv)
    if args.command != "regen-goldens":
        parser.print_help()
        return 2
    for path in write_goldens(args.out):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
