"""Golden-trace tooling: pin the serving engine's full event timelines.

Summary statistics (p95, throughput, availability) are too coarse to pin a
discrete-event engine: a refactor can shuffle the schedule, change every
timestamp and still land on similar aggregates.  This module serializes the
*complete* timeline of a serving run — every compute event, every transfer,
every terminal status, in order, at full float precision — into a JSON
document that is committed as a fixture and diffed exactly by
``tests/runtime/test_golden_traces.py``.

Six canonical workloads are pinned (:data:`GOLDEN_SCENARIOS`):

``steady``
    A Poisson AlexNet stream on the canonical three-tier testbed — the
    no-batching, no-fault serving baseline.
``chaos``
    The same testbed under a seeded chaos fault schedule with failover
    retries — pins abort/retry/failover timing.
``fleet``
    A multi-device topology with requests pinned round-robin across the
    device fleet — pins multi-hop routing and per-device source resolution.
``elastic``
    The steady testbed under a declarative elasticity schedule (two parked
    replicas join mid-run, one drains) with join-shortest-queue balancing —
    pins provisioning delays, graceful-drain timing and replica selection.
``multimodel``
    Two models (VGG-16 + AlexNet) alternating through a weight cache too
    tight to hold both, under LRU eviction and the zxc codec — pins
    cold-start transfer/decompress timing, eviction order and the
    cache-miss parking/resume schedule.
``adaptation``
    An AlexNet stream over a decaying optical backbone with online
    calibration and bandwidth forecasting enabled — pins proactive
    (forecast-ahead) repartition timing, calibrated plan pricing and the
    mispredict accounting.  The other five run with calibration off, so
    they double as the proof the machinery is inert by default.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python -m repro.testing regen-goldens

which rewrites ``tests/runtime/goldens/*.json`` (run from the repo root, or
pass ``--out``).  An unintentional diff is a regression: the default
(FIFO-scheduled, admission-free) engine must stay bit-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.runtime.serving import RequestRecord, ServingReport

#: Default fixture directory, relative to the repository root.
GOLDENS_DIR = Path("tests") / "runtime" / "goldens"


# --------------------------------------------------------------------------- #
# Canonical scenarios
# --------------------------------------------------------------------------- #
def _steady_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(network="wifi", num_edge_nodes=4, use_regression=False, profiler_noise_std=0.0)
    )
    workload = Workload.poisson("alexnet", num_requests=24, rate_rps=12.0, seed=11)
    return system.serve(workload)


def _chaos_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(network="wifi", num_edge_nodes=3, use_regression=False, profiler_noise_std=0.0)
    )
    workload = Workload.poisson("vgg16", num_requests=16, rate_rps=6.0, seed=5)
    return system.serve(workload, faults="chaos:2", max_retries=2)


def _fleet_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(topology="multi_device", use_regression=False, profiler_noise_std=0.0)
    )
    sources = [node.name for node in system.cluster.devices]
    workload = Workload.poisson(
        "alexnet", num_requests=18, rate_rps=9.0, seed=3, sources=sources
    )
    return system.serve(workload)


def _elastic_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.elasticity import ElasticitySchedule, NodeDrain, NodeJoin
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(network="wifi", num_edge_nodes=4, use_regression=False, profiler_noise_std=0.0)
    )
    schedule = ElasticitySchedule(
        [
            NodeJoin(0.4, "edge-2", provision_s=0.3),
            NodeDrain(1.2, "edge-1"),
            NodeJoin(1.6, "edge-3", provision_s=0.2),
        ],
        name="elastic-golden",
    )
    workload = Workload.poisson("alexnet", num_requests=24, rate_rps=12.0, seed=7)
    return system.serve(workload, elasticity=schedule, balancer="jsq")


def _multimodel_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.runtime.artifacts import MemoryModel
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(network="wifi", num_edge_nodes=2, use_regression=False, profiler_noise_std=0.0)
    )
    # VGG-16 (~553 MB) + AlexNet (~244 MB) against a 0.7 GiB cache: either
    # model fits alone, both together do not, so the alternating stream
    # forces the LRU cache to evict and reload — the regime the fixture pins.
    workload = Workload.poisson(
        ["vgg16", "alexnet"], num_requests=12, rate_rps=4.0, seed=13
    )
    return system.serve(
        workload, memory=MemoryModel(budget_gb=0.7, codec="zxc", eviction="lru")
    )


def _adaptation_report() -> ServingReport:
    from repro.core.d3 import D3Config, D3System
    from repro.network.conditions import BandwidthTrace, get_condition
    from repro.runtime.calibration import CalibrationConfig
    from repro.runtime.workload import Workload

    system = D3System(
        D3Config(network="optical", num_edge_nodes=2, use_regression=False, profiler_noise_std=0.0)
    )
    # Optical is the one Table III condition whose optimal AlexNet split
    # offloads the classifier head to the cloud, so the backbone decay below
    # genuinely moves the optimum — the fixture pins the forecaster firing
    # *before* the sampled multiplier leaves the reactive band.
    trace = BandwidthTrace(
        get_condition("optical"),
        [(0.0, 1.0), (0.6, 0.8), (1.0, 0.55), (1.4, 0.4), (2.0, 0.35)],
    )
    workload = Workload.poisson("alexnet", num_requests=20, rate_rps=10.0, seed=17)
    return system.serve(
        workload,
        trace=trace,
        calibration=CalibrationConfig(alpha=0.6, trend_beta=0.6, horizon_s=0.8),
    )


#: name -> report builder; every entry becomes one committed fixture.
GOLDEN_SCENARIOS: Dict[str, Callable[[], ServingReport]] = {
    "steady": _steady_report,
    "chaos": _chaos_report,
    "fleet": _fleet_report,
    "elastic": _elastic_report,
    "multimodel": _multimodel_report,
    "adaptation": _adaptation_report,
}


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
def serialize_record(record: RequestRecord) -> dict:
    """One request's full timeline as a JSON-ready dict (exact floats)."""
    return {
        "request_id": record.request_id,
        "model": record.model,
        "status": record.status,
        "retries": record.retries,
        "arrival_s": record.arrival_s,
        "completion_s": record.completion_s,
        "latency_s": record.report.end_to_end_latency_s,
        "events": [
            {
                "node": event.node,
                "tier": event.tier.value,
                "label": event.label,
                "kind": event.kind,
                "start_s": event.start_s,
                "end_s": event.end_s,
            }
            for event in record.report.events
        ],
        "transfers": [
            {
                "producer": transfer.producer,
                "consumer": transfer.consumer,
                "source_tier": transfer.source_tier.value,
                "destination_tier": transfer.destination_tier.value,
                "payload_bytes": transfer.payload_bytes,
                "start_s": transfer.start_s,
                "duration_s": transfer.duration_s,
            }
            for transfer in record.report.transfers
        ],
    }


def serialize_report(report: ServingReport) -> dict:
    """A serving report's complete observable behaviour as a JSON document.

    The ``memory`` block is emitted only when the run actually exercised the
    weight caches, so pre-memory fixtures stay byte-for-byte unchanged.
    """
    document = {
        "workload": report.workload_name,
        "method": report.method,
        "makespan_s": report.makespan_s,
        "num_requests": report.num_requests,
        "num_completed": report.num_completed,
        "num_failed": report.num_failed,
        "failover_replans": report.failover_replans,
        "node_busy_s": dict(sorted(report.node_busy_s.items())),
        "link_busy_s": dict(sorted(report.link_busy_s.items())),
        "node_down_s": dict(sorted(report.node_down_s.items())),
        "link_down_s": dict(sorted(report.link_down_s.items())),
        "records": [serialize_record(record) for record in report.records],
    }
    if report.cold_starts or report.weight_cache_misses or report.weight_cache_hits:
        document["memory"] = {
            "cold_starts": report.cold_starts,
            "cold_start_s": report.cold_start_s,
            "weight_cache_hits": report.weight_cache_hits,
            "weight_cache_misses": report.weight_cache_misses,
            "weight_evictions": report.weight_evictions,
            "peak_resident_bytes": report.peak_resident_bytes,
        }
    if (
        report.calibration_updates
        or report.proactive_repartitions
        or report.reactive_repartitions
        or report.forecast_mispredicts
    ):
        document["calibration"] = {
            "calibration_updates": report.calibration_updates,
            "proactive_repartitions": report.proactive_repartitions,
            "reactive_repartitions": report.reactive_repartitions,
            "forecast_mispredicts": report.forecast_mispredicts,
            "first_adaptation_s": report.first_adaptation_s,
        }
    if report.economics_enabled:
        document["economics"] = {
            "compute_energy_j": report.compute_energy_j,
            "radio_energy_j": report.radio_energy_j,
            "idle_energy_j": report.idle_energy_j,
            "total_cost_usd": report.total_cost_usd,
        }
    return document


def golden_trace(name: str) -> dict:
    """Run one canonical scenario and serialize its timeline."""
    if name not in GOLDEN_SCENARIOS:
        raise KeyError(
            f"unknown golden scenario {name!r}; available: {sorted(GOLDEN_SCENARIOS)}"
        )
    return serialize_report(GOLDEN_SCENARIOS[name]())


def write_goldens(out_dir: Optional[Path] = None) -> List[Path]:
    """Regenerate every golden fixture; returns the written paths."""
    out_dir = Path(out_dir or GOLDENS_DIR)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in GOLDEN_SCENARIOS:
        path = out_dir / f"{name}.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(golden_trace(name), handle, indent=1, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written


def load_golden(name: str, goldens_dir: Optional[Path] = None) -> dict:
    """Load one committed fixture."""
    path = Path(goldens_dir or GOLDENS_DIR) / f"{name}.json"
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
