"""Packaging for the D3 reproduction.

The container images this repo targets do not ship `wheel`/PEP 517 editable
builds, so all metadata lives here in classic ``setup()`` form; ``pip install
-e . --no-use-pep517`` and plain ``PYTHONPATH=src`` usage both work offline.
"""

import os

from setuptools import find_packages, setup


def _read_version() -> str:
    version_path = os.path.join(os.path.dirname(__file__), "src", "repro", "version.py")
    namespace = {}
    with open(version_path, encoding="utf-8") as handle:
        exec(handle.read(), namespace)
    return namespace["__version__"]


if __name__ == "__main__":
    setup(
        name="d3-repro",
        version=_read_version(),
        description=(
            "Reproduction of D3: dynamic DNN decomposition for synergistic "
            "device/edge/cloud inference, with a multi-request serving engine"
        ),
        package_dir={"": "src"},
        packages=find_packages("src"),
        python_requires=">=3.9",
        install_requires=["numpy", "networkx"],
        entry_points={"console_scripts": ["repro=repro.cli:main"]},
    )
