"""Setup shim for environments without the `wheel` package.

`pip install -e .` falls back to this legacy path (``--no-use-pep517``) when
PEP 517 editable builds are unavailable offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
