"""Unit tests for shape helpers."""

import pytest

from repro.graph.shapes import (
    conv_output_hw,
    element_count,
    is_feature_map,
    is_vector,
    same_padding,
    tensor_bytes,
    validate_shape,
)


class TestElementCount:
    def test_feature_map(self):
        assert element_count((3, 224, 224)) == 3 * 224 * 224

    def test_vector(self):
        assert element_count((4096,)) == 4096

    def test_singleton(self):
        assert element_count((1,)) == 1


class TestTensorBytes:
    def test_float32_default(self):
        assert tensor_bytes((3, 224, 224)) == 3 * 224 * 224 * 4

    def test_custom_element_size(self):
        assert tensor_bytes((10,), bytes_per_element=2) == 20


class TestValidateShape:
    def test_accepts_valid(self):
        assert validate_shape([3, 224, 224]) == (3, 224, 224)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_shape([])

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            validate_shape([3, 0, 224])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_shape([-1, 4])

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            validate_shape([3, 2.5])


class TestConvOutputHw:
    def test_same_padding_stride1(self):
        assert conv_output_hw(224, 224, (3, 3), (1, 1), (1, 1)) == (224, 224)

    def test_valid_padding(self):
        assert conv_output_hw(224, 224, (3, 3), (1, 1), (0, 0)) == (222, 222)

    def test_stride_two(self):
        assert conv_output_hw(224, 224, (3, 3), (2, 2), (1, 1)) == (112, 112)

    def test_alexnet_conv1(self):
        # 11x11 kernel, stride 4, padding 2 on 224 -> 55.
        assert conv_output_hw(224, 224, (11, 11), (4, 4), (2, 2)) == (55, 55)

    def test_pooling_window(self):
        assert conv_output_hw(55, 55, (3, 3), (2, 2), (0, 0)) == (27, 27)

    def test_asymmetric_kernel(self):
        assert conv_output_hw(17, 17, (1, 7), (1, 1), (0, 3)) == (17, 17)

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, (5, 5), (1, 1), (0, 0))


class TestPredicatesAndPadding:
    def test_is_feature_map(self):
        assert is_feature_map((3, 8, 8))
        assert not is_feature_map((10,))

    def test_is_vector(self):
        assert is_vector((10,))
        assert not is_vector((3, 8, 8))

    def test_same_padding_odd_kernel(self):
        assert same_padding((3, 3)) == (1, 1)
        assert same_padding((5, 5)) == (2, 2)

    def test_same_padding_asymmetric(self):
        assert same_padding((1, 7)) == (0, 3)
