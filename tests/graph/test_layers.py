"""Unit tests for layer specifications (shape inference, FLOPs, weights)."""

import pytest

from repro.graph.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    InputLayer,
    LeakyReLU,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    ShapeError,
    Softmax,
    all_layer_kinds,
)


class TestInputLayer:
    def test_output_shape(self):
        assert InputLayer((3, 224, 224)).infer_shape([]) == (3, 224, 224)

    def test_rejects_inputs(self):
        with pytest.raises(ShapeError):
            InputLayer((3, 4, 4)).infer_shape([(3, 4, 4)])

    def test_zero_flops(self):
        layer = InputLayer((3, 4, 4))
        assert layer.flops([], (3, 4, 4)) == 0


class TestConv2d:
    def test_shape(self):
        conv = Conv2d(out_channels=64, kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        assert conv.infer_shape([(3, 224, 224)]) == (64, 224, 224)

    def test_strided_shape(self):
        conv = Conv2d(out_channels=64, kernel=(7, 7), stride=(2, 2), padding=(3, 3))
        assert conv.infer_shape([(3, 224, 224)]) == (64, 112, 112)

    def test_flops_counts_macs_twice(self):
        conv = Conv2d(out_channels=8, kernel=(3, 3), padding=(1, 1), bias=False)
        out = conv.infer_shape([(4, 10, 10)])
        # 2 * Cin * K * K * Cout * H * W
        assert conv.flops([(4, 10, 10)], out) == 2 * 4 * 9 * 8 * 10 * 10

    def test_bias_adds_flops_and_weights(self):
        shape = [(4, 10, 10)]
        with_bias = Conv2d(out_channels=8, kernel=(3, 3), padding=(1, 1), bias=True)
        without = Conv2d(out_channels=8, kernel=(3, 3), padding=(1, 1), bias=False)
        out = with_bias.infer_shape(shape)
        assert with_bias.flops(shape, out) - without.flops(shape, out) == 8 * 10 * 10
        assert with_bias.weight_count(shape, out) - without.weight_count(shape, out) == 8

    def test_grouped_conv_weights(self):
        conv = Conv2d(out_channels=8, kernel=(3, 3), groups=2, bias=False)
        out = conv.infer_shape([(4, 10, 10)])
        assert conv.weight_count([(4, 10, 10)], out) == 8 * 2 * 9

    def test_rejects_channel_group_mismatch(self):
        conv = Conv2d(out_channels=9, kernel=(3, 3), groups=3)
        with pytest.raises(ShapeError):
            conv.infer_shape([(4, 10, 10)])

    def test_rejects_out_channels_not_divisible_by_groups(self):
        with pytest.raises(ValueError):
            Conv2d(out_channels=8, kernel=(3, 3), groups=3)

    def test_rejects_bad_out_channels(self):
        with pytest.raises(ValueError):
            Conv2d(out_channels=0, kernel=(3, 3))

    def test_is_convolutional_and_intensive(self):
        conv = Conv2d(out_channels=8, kernel=(3, 3))
        assert conv.is_convolutional
        assert conv.is_compute_intensive

    def test_rejects_vector_input(self):
        with pytest.raises(ShapeError):
            Conv2d(out_channels=8, kernel=(3, 3)).infer_shape([(100,)])


class TestPooling:
    def test_maxpool_shape(self):
        pool = MaxPool2d(kernel=(2, 2), stride=(2, 2))
        assert pool.infer_shape([(64, 112, 112)]) == (64, 56, 56)

    def test_avgpool_same_padding(self):
        pool = AvgPool2d(kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        assert pool.infer_shape([(64, 17, 17)]) == (64, 17, 17)

    def test_pool_is_convolutional_for_vsm(self):
        assert MaxPool2d().is_convolutional
        assert AvgPool2d().is_convolutional

    def test_global_avgpool(self):
        assert GlobalAvgPool2d().infer_shape([(512, 7, 7)]) == (512,)


class TestLinear:
    def test_shape(self):
        assert Linear(out_features=1000).infer_shape([(4096,)]) == (1000,)

    def test_weights(self):
        fc = Linear(out_features=10, bias=True)
        assert fc.weight_count([(20,)], (10,)) == 20 * 10 + 10

    def test_flops(self):
        fc = Linear(out_features=10, bias=False)
        assert fc.flops([(20,)], (10,)) == 2 * 20 * 10

    def test_rejects_feature_map_input(self):
        with pytest.raises(ShapeError):
            Linear(out_features=10).infer_shape([(3, 8, 8)])


class TestElementwiseLayers:
    def test_relu_preserves_shape(self):
        assert ReLU().infer_shape([(64, 8, 8)]) == (64, 8, 8)

    def test_leaky_relu_preserves_shape(self):
        assert LeakyReLU().infer_shape([(64, 8, 8)]) == (64, 8, 8)

    def test_batchnorm_weights(self):
        bn = BatchNorm2d()
        assert bn.weight_count([(64, 8, 8)], (64, 8, 8)) == 4 * 64

    def test_dropout_zero_flops(self):
        assert Dropout().flops([(100,)], (100,)) == 0

    def test_lrn_shape(self):
        assert LocalResponseNorm().infer_shape([(64, 8, 8)]) == (64, 8, 8)

    def test_flatten(self):
        assert Flatten().infer_shape([(256, 6, 6)]) == (256 * 36,)

    def test_softmax_shape(self):
        assert Softmax().infer_shape([(1000,)]) == (1000,)


class TestMergeLayers:
    def test_concat_channels(self):
        concat = Concat()
        assert concat.infer_shape([(96, 26, 26), (96, 26, 26), (64, 26, 26)]) == (256, 26, 26)

    def test_concat_rejects_mismatched_spatial(self):
        with pytest.raises(ShapeError):
            Concat().infer_shape([(96, 26, 26), (96, 13, 13)])

    def test_concat_needs_two_inputs(self):
        with pytest.raises(ShapeError):
            Concat().infer_shape([(96, 26, 26)])

    def test_add_shape(self):
        assert Add().infer_shape([(64, 56, 56), (64, 56, 56)]) == (64, 56, 56)

    def test_add_rejects_mismatch(self):
        with pytest.raises(ShapeError):
            Add().infer_shape([(64, 56, 56), (32, 56, 56)])

    def test_add_flops(self):
        assert Add().flops([(4, 2, 2), (4, 2, 2)], (4, 2, 2)) == 16


def test_all_layer_kinds_unique():
    kinds = all_layer_kinds()
    assert len(kinds) == len(set(kinds))
    assert "conv" in kinds and "linear" in kinds
