"""Unit tests for the fluent graph builder."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.dag import GraphError


class TestBuilder:
    def test_sequential_chaining_uses_previous_vertex(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 4, kernel=3, padding=1)
        builder.relu("r1")
        graph = builder.build()
        assert [p.name for p in graph.predecessors("r1")] == ["c1"]

    def test_explicit_inputs_create_branches(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 4, kernel=3, padding=1)
        builder.conv("a", 4, kernel=1, padding=0, inputs=["c1"])
        builder.conv("b", 4, kernel=1, padding=0, inputs=["c1"])
        builder.concat("cat", inputs=["a", "b"])
        graph = builder.build()
        assert {v.name for v in graph.successors("c1")} == {"a", "b"}

    def test_same_padding_default(self):
        builder = GraphBuilder("g", input_shape=(3, 9, 9))
        builder.conv("c1", 4, kernel=3)  # padding defaults to "same"
        assert builder.graph.vertex("c1").output_shape == (4, 9, 9)

    def test_int_hyperparameters_normalised_to_pairs(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 4, kernel=3, stride=2, padding=1)
        assert builder.graph.vertex("c1").spec.kernel == (3, 3)
        assert builder.graph.vertex("c1").spec.stride == (2, 2)

    def test_maxpool_stride_defaults_to_kernel(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.maxpool("p1", kernel=2)
        assert builder.graph.vertex("p1").output_shape == (3, 4, 4)

    def test_conv_bn_relu_block(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv_bn_relu("c1", 4, kernel=3)
        graph = builder.build()
        assert "c1" in graph and "c1_bn" in graph and "c1_act" in graph
        assert graph.vertex("c1").spec.bias is False

    def test_conv_bn_relu_leaky(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv_bn_relu("c1", 4, kernel=3, leaky=True)
        assert builder.graph.vertex("c1_act").kind == "leakyrelu"

    def test_set_current(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 4, kernel=3)
        builder.conv("c2", 4, kernel=3)
        builder.set_current("c1")
        builder.conv("c3", 4, kernel=3)
        graph = builder.graph
        assert [p.name for p in graph.predecessors("c3")] == ["c1"]

    def test_set_current_unknown_raises(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        with pytest.raises(GraphError):
            builder.set_current("missing")

    def test_residual_add(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 3, kernel=3)
        builder.residual_add("add", inputs=["c1", "input"])
        graph = builder.build()
        assert graph.vertex("add").output_shape == (3, 8, 8)

    def test_classifier_head_helpers(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.global_avgpool("gap")
        builder.dropout("drop")
        builder.linear("fc", 10)
        builder.softmax("sm")
        graph = builder.build()
        assert graph.vertex("sm").output_shape == (10,)

    def test_build_validates(self):
        builder = GraphBuilder("g", input_shape=(3, 8, 8))
        builder.conv("c1", 4, kernel=3)
        graph = builder.build()
        assert graph.name == "g"
