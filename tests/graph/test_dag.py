"""Unit tests for the DNN DAG substrate."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.dag import DnnGraph, GraphError
from repro.graph.layers import Conv2d, InputLayer, ReLU


def build_diamond():
    """input -> conv1 -> {branch_a, branch_b} -> concat -> fc."""
    builder = GraphBuilder("diamond", input_shape=(3, 16, 16))
    builder.conv("conv1", 8, kernel=3, padding=1)
    builder.conv("branch_a", 8, kernel=1, padding=0, inputs=["conv1"])
    builder.conv("branch_b", 8, kernel=3, padding=1, inputs=["conv1"])
    builder.concat("concat", inputs=["branch_a", "branch_b"])
    builder.flatten("flatten")
    builder.linear("fc", 10)
    return builder.build()


class TestConstruction:
    def test_input_must_be_first(self):
        graph = DnnGraph("g")
        graph.add_input((3, 8, 8))
        with pytest.raises(GraphError):
            graph.add_input((3, 8, 8))

    def test_duplicate_name_rejected(self):
        graph = DnnGraph("g")
        graph.add_input((3, 8, 8), name="input")
        graph.add_vertex("conv", Conv2d(4, (3, 3), padding=(1, 1)), ["input"])
        with pytest.raises(GraphError):
            graph.add_vertex("conv", ReLU(), ["conv"])

    def test_unknown_input_rejected(self):
        graph = DnnGraph("g")
        graph.add_input((3, 8, 8))
        with pytest.raises(GraphError):
            graph.add_vertex("conv", Conv2d(4, (3, 3)), ["nope"])

    def test_vertex_requires_inputs(self):
        graph = DnnGraph("g")
        graph.add_input((3, 8, 8))
        with pytest.raises(GraphError):
            graph.add_vertex("conv", Conv2d(4, (3, 3)), [])

    def test_annotations_resolved_eagerly(self):
        graph = build_diamond()
        conv1 = graph.vertex("conv1")
        assert conv1.output_shape == (8, 16, 16)
        assert conv1.flops > 0
        assert conv1.output_bytes == 8 * 16 * 16 * 4


class TestQueries:
    def test_len_and_iteration(self):
        graph = build_diamond()
        assert len(graph) == 7
        assert [v.name for v in graph][0] == "input"

    def test_predecessors_successors(self):
        graph = build_diamond()
        assert [v.name for v in graph.predecessors("concat")] == ["branch_a", "branch_b"]
        assert {v.name for v in graph.successors("conv1")} == {"branch_a", "branch_b"}

    def test_edges_count(self):
        graph = build_diamond()
        assert graph.num_edges == 7

    def test_output_vertices(self):
        graph = build_diamond()
        assert [v.name for v in graph.output_vertices()] == ["fc"]

    def test_contains(self):
        graph = build_diamond()
        assert "conv1" in graph and "nope" not in graph

    def test_vertex_lookup_by_index_and_name(self):
        graph = build_diamond()
        assert graph.vertex(0).name == "input"
        assert graph.vertex("fc").index == len(graph) - 1

    def test_input_shape(self):
        assert build_diamond().input_shape == (3, 16, 16)


class TestAnalytics:
    def test_topological_order_is_insertion_order(self):
        graph = build_diamond()
        order = graph.topological_order()
        positions = {v.name: i for i, v in enumerate(order)}
        for src, dst in graph.edges():
            assert positions[src.name] < positions[dst.name]

    def test_longest_distances_chain(self, alexnet):
        distances = alexnet.longest_distances()
        assert distances[0] == 0
        assert max(distances.values()) == len(alexnet) - 1

    def test_longest_distances_diamond(self):
        graph = build_diamond()
        distances = {graph.vertex(i).name: d for i, d in graph.longest_distances().items()}
        assert distances["input"] == 0
        assert distances["conv1"] == 1
        assert distances["branch_a"] == distances["branch_b"] == 2
        assert distances["concat"] == 3

    def test_graph_layers_partition_vertices(self, resnet18):
        layers = resnet18.graph_layers()
        total = sum(len(layer) for layer in layers)
        assert total == len(resnet18)
        assert [v.name for v in layers[0]] == ["input"]

    def test_is_chain(self, alexnet, resnet18):
        assert alexnet.is_chain()
        assert not resnet18.is_chain()

    def test_sis_vertices(self):
        # Reproduce the Fig. 6 example: v6 is a SIS vertex of v5 because its
        # predecessor set is a strict subset of v5's.
        builder = GraphBuilder("sis", input_shape=(3, 8, 8))
        builder.conv("v1", 4, kernel=1, padding=0)
        builder.conv("v2", 4, kernel=1, padding=0, inputs=["input"])
        builder.conv("v3", 4, kernel=1, padding=0, inputs=["input"])
        builder.concat("v5", inputs=["v1", "v2", "v3"])
        builder.concat("v6", inputs=["v1", "v2"])
        builder.concat("v7", inputs=["v6", "v3"])
        graph = builder.graph
        sis_of_v5 = {v.name for v in graph.sis_vertices("v5")}
        assert "v6" in sis_of_v5
        assert "v7" not in sis_of_v5

    def test_totals(self, alexnet):
        assert alexnet.total_flops() > 1e9
        assert alexnet.total_weights() > 50e6


class TestValidationAndExport:
    def test_validate_passes_for_models(self, alexnet, resnet18):
        alexnet.validate()
        resnet18.validate()

    def test_validate_detects_missing_input(self):
        graph = DnnGraph("bad")
        with pytest.raises(GraphError):
            graph.validate()

    def test_to_networkx_roundtrip(self, alexnet):
        nx_graph = alexnet.to_networkx()
        assert nx_graph.number_of_nodes() == len(alexnet)
        assert nx_graph.number_of_edges() == alexnet.num_edges

    def test_summary_mentions_every_vertex(self):
        graph = build_diamond()
        summary = graph.summary()
        for vertex in graph:
            assert vertex.name in summary
