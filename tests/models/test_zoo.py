"""Tests for the model zoo: architecture fidelity of the five paper models."""

import pytest

from repro.models.zoo import PAPER_MODELS, build_model, display_name, list_models


class TestRegistry:
    def test_all_paper_models_registered(self):
        for name in ["alexnet", "vgg16", "resnet18", "darknet53", "inception_v4"]:
            assert name in list_models()

    def test_paper_model_order(self):
        assert PAPER_MODELS == ["alexnet", "vgg16", "resnet18", "darknet53", "inception_v4"]

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("lenet5")

    def test_name_normalisation(self):
        graph = build_model("ResNet-18")
        assert graph.name == "resnet18"

    def test_display_names(self):
        assert display_name("vgg16") == "VGG-16"
        assert display_name("inception_v4") == "Inception-v4"


class TestParameterCounts:
    """Parameter counts must match the published architectures (±2%)."""

    @pytest.mark.parametrize(
        "model, expected_million",
        [
            ("alexnet", 61.1),
            ("vgg16", 138.4),
            ("resnet18", 11.7),
            ("darknet53", 41.6),
            ("inception_v4", 42.7),
        ],
    )
    def test_weight_counts(self, model, expected_million):
        graph = build_model(model)
        assert graph.total_weights() / 1e6 == pytest.approx(expected_million, rel=0.02)


class TestTopology:
    def test_chain_models(self):
        assert build_model("alexnet").is_chain()
        assert build_model("vgg16").is_chain()

    def test_dag_models(self):
        for name in ["resnet18", "darknet53", "inception_v4"]:
            assert not build_model(name).is_chain()

    def test_all_models_validate(self):
        for name in PAPER_MODELS:
            build_model(name).validate()

    def test_classifier_output_is_1000_classes(self):
        for name in PAPER_MODELS:
            graph = build_model(name)
            assert graph.output_vertices()[-1].output_shape == (1000,)

    def test_custom_class_count(self):
        graph = build_model("resnet18", num_classes=10)
        assert graph.output_vertices()[-1].output_shape == (10,)


class TestPerModelStructure:
    def test_alexnet_layer_inventory(self):
        graph = build_model("alexnet")
        convs = [v for v in graph if v.kind == "conv"]
        pools = [v for v in graph if v.kind == "maxpool"]
        fcs = [v for v in graph if v.kind == "linear"]
        assert len(convs) == 5 and len(pools) == 3 and len(fcs) == 3

    def test_vgg16_has_13_convs(self):
        graph = build_model("vgg16")
        assert len([v for v in graph if v.kind == "conv"]) == 13

    def test_vgg16_fc1_is_biggest_layer(self):
        graph = build_model("vgg16")
        fc1 = graph.vertex("fc1")
        assert fc1.weight_count == 25088 * 4096 + 4096

    def test_resnet18_has_8_residual_adds(self):
        graph = build_model("resnet18")
        assert len([v for v in graph if v.kind == "add"]) == 8

    def test_resnet18_downsample_convs(self):
        graph = build_model("resnet18")
        downsamples = [v for v in graph if v.name.endswith("_downsample")]
        assert len(downsamples) == 3  # stages 2, 3 and 4

    def test_darknet53_conv_count(self):
        # 52 convolutions in the backbone (the 53rd "layer" is the classifier).
        graph = build_model("darknet53")
        assert len([v for v in graph if v.kind == "conv"]) == 52

    def test_darknet53_residual_counts(self):
        graph = build_model("darknet53")
        adds = [v for v in graph if v.kind == "add"]
        assert len(adds) == 1 + 2 + 8 + 8 + 4

    def test_inception_v4_concat_modules(self):
        graph = build_model("inception_v4")
        concats = [v for v in graph if v.kind == "concat"]
        # 3 stem mixes + 4 A + reduction-A + 7 B + reduction-B + 3 C = 19.
        assert len(concats) == 19

    def test_inception_reduced_depth_for_tests(self):
        graph = build_model("inception_v4", num_a=1, num_b=1, num_c=1)
        assert len(graph) < len(build_model("inception_v4"))

    def test_include_activations_adds_vertices(self):
        compact = build_model("resnet18")
        verbose = build_model("resnet18", include_activations=True)
        assert len(verbose) > len(compact)
        # The compute structure (conv count) is unchanged.
        assert len([v for v in compact if v.kind == "conv"]) == len(
            [v for v in verbose if v.kind == "conv"]
        )

    def test_feature_maps_shrink_through_vgg(self):
        graph = build_model("vgg16")
        first_conv = graph.vertex("conv1")
        last_conv = graph.vertex("conv13")
        assert last_conv.output_bytes < first_conv.output_bytes

    def test_custom_input_shape_propagates(self):
        graph = build_model("vgg16", input_shape=(3, 64, 64))
        assert graph.input_shape == (3, 64, 64)
        assert graph.vertex("conv1").output_shape == (64, 64, 64)
