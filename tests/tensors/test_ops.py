"""Tests for the reference numpy operators."""

import numpy as np
import pytest

from repro.tensors import ops


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.standard_normal((2, 5, 5))
        weight = np.zeros((2, 2, 1, 1))
        weight[0, 0, 0, 0] = 1.0
        weight[1, 1, 0, 0] = 1.0
        out = ops.conv2d(x, weight)
        assert np.allclose(out, x)

    def test_known_sum_kernel(self):
        x = np.ones((1, 4, 4))
        weight = np.ones((1, 1, 3, 3))
        out = ops.conv2d(x, weight, stride=(1, 1), padding=(0, 0))
        assert out.shape == (1, 2, 2)
        assert np.allclose(out, 9.0)

    def test_padding_effect_on_border(self):
        x = np.ones((1, 3, 3))
        weight = np.ones((1, 1, 3, 3))
        out = ops.conv2d(x, weight, padding=(1, 1))
        assert out.shape == (1, 3, 3)
        assert out[0, 1, 1] == pytest.approx(9.0)
        assert out[0, 0, 0] == pytest.approx(4.0)  # corner sees only 4 real values

    def test_stride(self, rng):
        x = rng.standard_normal((3, 8, 8))
        weight = rng.standard_normal((4, 3, 3, 3))
        out = ops.conv2d(x, weight, stride=(2, 2), padding=(1, 1))
        assert out.shape == (4, 4, 4)

    def test_bias(self):
        x = np.zeros((1, 3, 3))
        weight = np.zeros((2, 1, 1, 1))
        out = ops.conv2d(x, weight, bias=np.array([1.0, -2.0]))
        assert np.allclose(out[0], 1.0) and np.allclose(out[1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ops.conv2d(rng.standard_normal((3, 4, 4)), rng.standard_normal((2, 4, 1, 1)))

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            ops.conv2d(rng.standard_normal((4, 4)), rng.standard_normal((1, 1, 1, 1)))


class TestPooling:
    def test_max_pool_basic(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = ops.max_pool2d(x, kernel=(2, 2))
        assert out.shape == (1, 2, 2)
        assert np.array_equal(out[0], [[5, 7], [13, 15]])

    def test_max_pool_padding_uses_neg_inf(self):
        x = -np.ones((1, 2, 2))
        out = ops.max_pool2d(x, kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        # Padded entries must never win the max.
        assert out.max() == pytest.approx(-1.0)

    def test_avg_pool_counts_padding(self):
        x = np.ones((1, 2, 2))
        out = ops.avg_pool2d(x, kernel=(2, 2), stride=(2, 2), padding=(1, 1))
        # Each window holds one real value and three zeros.
        assert np.allclose(out, 0.25)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((8, 5, 5))
        out = ops.global_avg_pool2d(x)
        assert out.shape == (8,)
        assert out[3] == pytest.approx(x[3].mean())


class TestDenseAndActivations:
    def test_linear(self):
        weight = np.array([[1.0, 2.0], [0.0, -1.0]])
        out = ops.linear(np.array([3.0, 4.0]), weight, bias=np.array([1.0, 0.0]))
        assert np.allclose(out, [12.0, -4.0])

    def test_linear_shape_checks(self):
        with pytest.raises(ValueError):
            ops.linear(np.ones((2, 2)), np.ones((2, 4)))
        with pytest.raises(ValueError):
            ops.linear(np.ones(3), np.ones((2, 4)))

    def test_relu(self):
        assert np.array_equal(ops.relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_leaky_relu(self):
        assert np.allclose(ops.leaky_relu(np.array([-10.0, 5.0]), 0.1), [-1.0, 5.0])

    def test_softmax_sums_to_one(self, rng):
        out = ops.softmax(rng.standard_normal(10))
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out > 0)

    def test_softmax_numerical_stability(self):
        out = ops.softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(out, 0.5)

    def test_batch_norm_normalises(self, rng):
        x = rng.standard_normal((4, 6, 6))
        gamma = np.ones(4)
        beta = np.zeros(4)
        mean = x.mean(axis=(1, 2))
        var = x.var(axis=(1, 2))
        out = ops.batch_norm(x, gamma, beta, mean, var)
        assert out.mean(axis=(1, 2)) == pytest.approx(np.zeros(4), abs=1e-6)

    def test_local_response_norm_shrinks_magnitudes(self, rng):
        x = np.abs(rng.standard_normal((8, 4, 4))) + 1.0
        out = ops.local_response_norm(x)
        assert out.shape == x.shape
        assert np.all(np.abs(out) <= np.abs(x))


class TestMergeOps:
    def test_add(self, rng):
        a = rng.standard_normal((2, 3, 3))
        b = rng.standard_normal((2, 3, 3))
        assert np.allclose(ops.add(a, b), a + b)

    def test_add_requires_matching_shapes(self, rng):
        with pytest.raises(ValueError):
            ops.add(rng.standard_normal((2, 3, 3)), rng.standard_normal((2, 4, 4)))

    def test_concat_channels(self, rng):
        a = rng.standard_normal((2, 3, 3))
        b = rng.standard_normal((5, 3, 3))
        out = ops.concat_channels(a, b)
        assert out.shape == (7, 3, 3)
        assert np.array_equal(out[:2], a)

    def test_concat_requires_matching_spatial(self, rng):
        with pytest.raises(ValueError):
            ops.concat_channels(rng.standard_normal((2, 3, 3)), rng.standard_normal((2, 4, 4)))

    def test_flatten(self, rng):
        x = rng.standard_normal((2, 3, 4))
        assert ops.flatten(x).shape == (24,)


class TestPadding:
    def test_pad2d_asymmetric(self):
        x = np.ones((1, 2, 2))
        out = ops.pad2d_asymmetric(x, top=1, bottom=0, left=2, right=0, value=7.0)
        assert out.shape == (1, 3, 4)
        assert out[0, 0, 0] == 7.0 and out[0, 1, 2] == 1.0

    def test_pad2d_negative_rejected(self):
        with pytest.raises(ValueError):
            ops.pad2d(np.ones((1, 2, 2)), (-1, 0))
