"""Tests for the numpy graph executor and weight store."""

import numpy as np
import pytest

from repro.models.zoo import build_model
from repro.tensors.executor import GraphExecutor, WeightStore


class TestWeightStore:
    def test_deterministic_across_instances(self, tiny_conv_graph):
        spec = tiny_conv_graph.vertex("conv1").spec
        a = WeightStore(seed=0).conv_weights("conv1", spec, 3)
        b = WeightStore(seed=0).conv_weights("conv1", spec, 3)
        assert np.array_equal(a["weight"], b["weight"])

    def test_different_layers_get_different_weights(self, tiny_conv_graph):
        store = WeightStore(seed=0)
        spec = tiny_conv_graph.vertex("conv1").spec
        a = store.conv_weights("conv1", spec, 3)
        b = store.conv_weights("other_layer", spec, 3)
        assert not np.array_equal(a["weight"], b["weight"])

    def test_seed_changes_weights(self, tiny_conv_graph):
        spec = tiny_conv_graph.vertex("conv1").spec
        a = WeightStore(seed=0).conv_weights("conv1", spec, 3)
        b = WeightStore(seed=1).conv_weights("conv1", spec, 3)
        assert not np.array_equal(a["weight"], b["weight"])


class TestGraphExecutor:
    def test_runs_tiny_graph_end_to_end(self, tiny_conv_graph, rng):
        executor = GraphExecutor(tiny_conv_graph)
        output = executor.output(rng.standard_normal((3, 32, 32)))
        assert output.shape == (10,)
        assert output.sum() == pytest.approx(1.0)  # softmax

    def test_activation_shapes_match_graph_annotations(self, tiny_conv_graph, rng):
        executor = GraphExecutor(tiny_conv_graph)
        activations = executor.run(rng.standard_normal((3, 32, 32)))
        for vertex in tiny_conv_graph:
            assert activations[vertex.index].shape == tuple(vertex.output_shape)

    def test_rejects_wrong_input_shape(self, tiny_conv_graph, rng):
        executor = GraphExecutor(tiny_conv_graph)
        with pytest.raises(ValueError):
            executor.run(rng.standard_normal((3, 16, 16)))

    def test_deterministic_given_seed(self, tiny_conv_graph, rng):
        frame = rng.standard_normal((3, 32, 32))
        out1 = GraphExecutor(tiny_conv_graph, WeightStore(seed=3)).output(frame)
        out2 = GraphExecutor(tiny_conv_graph, WeightStore(seed=3)).output(frame)
        assert np.array_equal(out1, out2)

    def test_dag_model_executes(self, rng):
        graph = build_model("resnet18", input_shape=(3, 32, 32), num_classes=7)
        executor = GraphExecutor(graph)
        output = executor.output(rng.standard_normal((3, 32, 32)))
        assert output.shape == (7,)

    def test_subgraph_execution_matches_full_run(self, tiny_conv_graph, rng):
        """Executing a partition separately reproduces the same activations."""
        frame = rng.standard_normal((3, 32, 32))
        store = WeightStore(seed=0)
        full = GraphExecutor(tiny_conv_graph, store).run(frame)

        split = 4  # first vertices run "on the device", the rest "on the edge"
        front = [v.index for v in tiny_conv_graph if v.index <= split]
        back = [v.index for v in tiny_conv_graph if v.index > split]
        executor = GraphExecutor(tiny_conv_graph, WeightStore(seed=0))
        front_acts = executor.run_subgraph(front, {0: frame})
        # Hand over only the boundary activations, as the runtime would.
        boundary = {i: front_acts[i] for i in front}
        back_acts = executor.run_subgraph(back, boundary)
        final_index = tiny_conv_graph.output_vertices()[-1].index
        assert np.array_equal(back_acts[final_index], full[final_index])

    def test_subgraph_missing_boundary_raises(self, tiny_conv_graph, rng):
        executor = GraphExecutor(tiny_conv_graph)
        with pytest.raises(KeyError):
            executor.run_subgraph([3], {})

    def test_inception_style_branches_execute(self, rng):
        graph = build_model("inception_v4", input_shape=(3, 96, 96), num_classes=5,
                            num_a=1, num_b=1, num_c=1)
        executor = GraphExecutor(graph)
        output = executor.output(rng.standard_normal((3, 96, 96)))
        assert output.shape == (5,)
