"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.models.zoo import build_model
from repro.network.conditions import get_condition
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster


@pytest.fixture(scope="session")
def alexnet():
    """Compact AlexNet graph (chain topology)."""
    return build_model("alexnet")


@pytest.fixture(scope="session")
def resnet18():
    """Compact ResNet-18 graph (DAG topology)."""
    return build_model("resnet18")


@pytest.fixture(scope="session")
def small_inception():
    """A reduced Inception-v4 (1 block per stage) for fast DAG tests."""
    return build_model("inception_v4", num_a=1, num_b=1, num_c=1)


@pytest.fixture(scope="session")
def tiny_conv_graph():
    """A small convolutional chain suitable for numeric execution."""
    builder = GraphBuilder("tiny", input_shape=(3, 32, 32))
    builder.conv("conv1", 8, kernel=3, stride=1, padding=1)
    builder.relu("relu1")
    builder.conv("conv2", 8, kernel=3, stride=2, padding=1)
    builder.maxpool("pool1", kernel=2, stride=2)
    builder.conv("conv3", 16, kernel=3, stride=1, padding=1)
    builder.flatten("flatten")
    builder.linear("fc", 10)
    builder.softmax("softmax")
    return builder.build()


@pytest.fixture(scope="session")
def wifi():
    return get_condition("wifi")


@pytest.fixture(scope="session")
def cluster_one_edge():
    return Cluster.build(network="wifi", num_edge_nodes=1)


@pytest.fixture(scope="session")
def cluster_four_edge():
    return Cluster.build(network="wifi", num_edge_nodes=4)


@pytest.fixture(scope="session")
def clean_profiler():
    """A profiler without measurement noise (deterministic latencies)."""
    return Profiler(noise_std=0.0, seed=0)


@pytest.fixture(scope="session")
def alexnet_profile(alexnet, cluster_one_edge, clean_profiler):
    """Noise-free per-tier latency profile of AlexNet."""
    return clean_profiler.build_profile_from_measurements(
        alexnet, cluster_one_edge.tier_hardware(), repeats=1
    )


@pytest.fixture(scope="session")
def resnet_profile(resnet18, cluster_one_edge, clean_profiler):
    """Noise-free per-tier latency profile of ResNet-18."""
    return clean_profiler.build_profile_from_measurements(
        resnet18, cluster_one_edge.tier_hardware(), repeats=1
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
