"""Table-construction tests for the serving comparison harnesses.

``experiments.availability`` and ``experiments.topologies`` were previously
exercised only through the CLI smoke path; these tests pin their row/column
shape, the ``None`` cells unsupported methods must produce, and determinism
across runs.  ``experiments.slo`` additionally carries the scheduling
acceptance properties: micro-batching strictly improves a compute-bound
method's throughput at high arrival rates, and the deadline scheduler
improves SLO attainment under overload.
"""

import dataclasses

import pytest

from repro.experiments.adaptation import (
    AGGRESSIVENESS,
    MODES,
    AdaptationScenario,
    format_adaptation_comparison,
    run_adaptation_cell,
    run_adaptation_comparison,
)
from repro.experiments.availability import (
    format_availability_comparison,
    run_availability_comparison,
)
from repro.experiments.pareto import (
    ParetoScenario,
    format_pareto_comparison,
    run_pareto_comparison,
)
from repro.experiments.serving import ServingScenario
from repro.experiments.slo import (
    format_slo_comparison,
    occupancy_summary,
    run_slo_comparison,
)
from repro.experiments.topologies import (
    format_topology_comparison,
    run_topology_comparison,
)


def tiny_scenario(**overrides):
    """A fast deterministic scenario (ResNet-18 is a DAG, so Neurosurgeon —
    chains only — must decline it and produce ``None`` cells)."""
    base = dict(
        models=("resnet18",),
        num_requests=5,
        rate_rps=4.0,
        num_edge_nodes=2,
    )
    base.update(overrides)
    return ServingScenario(**base)


class TestAvailabilityTable:
    METHODS = ("hpa_vsm", "neurosurgeon")
    MTBFS = (None, 5.0)

    @pytest.fixture(scope="class")
    def results(self):
        return run_availability_comparison(
            methods=self.METHODS, mtbfs_s=self.MTBFS, scenario=tiny_scenario()
        )

    def test_row_shape_and_order(self, results):
        assert len(results) == len(self.METHODS) * len(self.MTBFS)
        assert [(m, f) for m, f, _ in results] == [
            (method, mtbf) for method in self.METHODS for mtbf in self.MTBFS
        ]

    def test_unsupported_method_cells_are_none(self, results):
        for method, _, report in results:
            if method == "neurosurgeon":
                assert report is None  # ResNet-18 is not a chain
            else:
                assert report is not None

    def test_served_cells_cover_the_workload(self, results):
        for _, _, report in results:
            if report is not None:
                assert report.num_requests == 5
                assert 0.0 <= report.availability <= 1.0

    def test_deterministic_across_runs(self, results):
        again = run_availability_comparison(
            methods=self.METHODS, mtbfs_s=self.MTBFS, scenario=tiny_scenario()
        )
        assert format_availability_comparison(again) == format_availability_comparison(
            results
        )

    def test_format_renders_none_as_na(self, results):
        text = format_availability_comparison(results)
        assert "n/a" in text
        assert "avail %" in text

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_availability_comparison(methods=())
        with pytest.raises(ValueError):
            run_availability_comparison(mtbfs_s=())


class TestTopologyTable:
    METHODS = ("hpa_vsm", "neurosurgeon")
    TOPOLOGIES = ("three_tier", "multi_device")

    @pytest.fixture(scope="class")
    def results(self):
        return run_topology_comparison(
            methods=self.METHODS, topologies=self.TOPOLOGIES, scenario=tiny_scenario()
        )

    def test_row_and_column_shape(self, results):
        assert [topology for topology, _ in results] == list(self.TOPOLOGIES)
        for _, per_method in results:
            assert list(per_method) == list(self.METHODS)

    def test_unsupported_method_cells_are_none(self, results):
        for _, per_method in results:
            assert per_method["neurosurgeon"] is None
            assert per_method["hpa_vsm"] is not None

    def test_deterministic_across_runs(self, results):
        again = run_topology_comparison(
            methods=self.METHODS, topologies=self.TOPOLOGIES, scenario=tiny_scenario()
        )
        assert format_topology_comparison(again) == format_topology_comparison(results)

    def test_format_has_one_column_per_method(self, results):
        header = format_topology_comparison(results).splitlines()[1]
        for method in self.METHODS:
            assert f"{method} p95 ms" in header

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_topology_comparison(methods=())
        with pytest.raises(ValueError):
            run_topology_comparison(topologies=())


class TestSloTable:
    RATES = (2.0, 30.0)
    SCHEDULERS = ("fifo", "batch", "edf")

    @pytest.fixture(scope="class")
    def results(self):
        scenario = ServingScenario(
            models=("alexnet",), num_requests=30, num_edge_nodes=4, slo_ms=500.0
        )
        return run_slo_comparison(
            methods=("device_only",),
            rates_rps=self.RATES,
            schedulers=self.SCHEDULERS,
            scenario=scenario,
        )

    def cell(self, results, rate, scheduler):
        for method, r, s, report in results:
            if r == rate and s == scheduler:
                return report
        raise AssertionError(f"missing cell ({rate}, {scheduler})")

    def test_full_cross_product(self, results):
        assert len(results) == len(self.RATES) * len(self.SCHEDULERS)

    def test_batching_strictly_improves_overload_throughput(self, results):
        fifo = self.cell(results, 30.0, "fifo")
        batch = self.cell(results, 30.0, "batch")
        assert batch.throughput_rps > fifo.throughput_rps
        assert batch.mean_batch_occupancy > 1.0

    def test_edf_improves_attainment_under_overload(self, results):
        fifo = self.cell(results, 30.0, "fifo")
        edf = self.cell(results, 30.0, "edf")
        assert edf.slo_attainment > fifo.slo_attainment
        assert edf.goodput_rps >= fifo.goodput_rps
        assert edf.num_rejected > 0

    def test_underload_needs_no_shedding(self, results):
        edf = self.cell(results, 2.0, "edf")
        assert edf.slo_attainment > 0.5

    def test_unsupported_method_cells_are_none(self):
        rows = run_slo_comparison(
            methods=("neurosurgeon",),
            rates_rps=(4.0,),
            schedulers=("fifo",),
            scenario=tiny_scenario(slo_ms=500.0),
        )
        assert rows == [("neurosurgeon", 4.0, "fifo", None)]
        assert "n/a" in format_slo_comparison(rows)

    def test_occupancy_summary_shape(self, results):
        summary = occupancy_summary(results)
        assert set(summary) == set(self.SCHEDULERS)
        assert summary["batch"] >= summary["fifo"]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_slo_comparison(methods=())
        with pytest.raises(ValueError):
            run_slo_comparison(rates_rps=())
        with pytest.raises(ValueError):
            run_slo_comparison(schedulers=())


class TestAdaptationTable:
    @pytest.fixture(scope="class")
    def results(self):
        return run_adaptation_comparison()

    def test_row_shape_and_order(self, results):
        assert [(drift, mode) for drift, mode, *_ in results] == [
            (label, mode) for label, _ in AGGRESSIVENESS for mode in MODES
        ]

    def test_every_cell_serves_the_full_stream(self, results):
        scenario = AdaptationScenario()
        for _, _, report, _, _ in results:
            assert report.num_completed == scenario.num_requests

    def test_reactive_cells_never_fire_proactively(self, results):
        for _, mode, report, _, _ in results:
            if mode == "reactive":
                assert report.proactive_repartitions == 0
                assert report.forecast_mispredicts == 0

    def test_deterministic_across_runs(self, results):
        again = run_adaptation_comparison()
        assert format_adaptation_comparison(again) == format_adaptation_comparison(
            results
        )

    def test_format_reports_the_three_axes(self, results):
        text = format_adaptation_comparison(results)
        assert "lag (s)" in text
        assert "mid-drift p99 (ms)" in text
        assert "mispredicts" in text

    def test_input_validation(self):
        with pytest.raises(ValueError):
            format_adaptation_comparison([])
        with pytest.raises(ValueError):
            run_adaptation_cell(AdaptationScenario(), 0.5, "psychic")
        with pytest.raises(ValueError):
            AdaptationScenario(drift_onset_s=3.0, drift_end_s=1.0)
        with pytest.raises(ValueError):
            AdaptationScenario().build_trace(1.5)


class TestParetoTable:
    @pytest.fixture(scope="class")
    def scenario(self):
        return ParetoScenario(num_requests=8)

    @pytest.fixture(scope="class")
    def results(self, scenario):
        return run_pareto_comparison(scenario)

    def test_row_shape_and_order(self, results, scenario):
        assert [(label, method) for label, _, method, _ in results] == [
            (label, method)
            for label, _ in scenario.weight_vectors
            for method in scenario.methods
        ]

    def test_every_cell_is_metered_and_serves_the_stream(self, results, scenario):
        for _, _, _, report in results:
            assert report is not None
            assert report.economics_enabled
            assert report.num_completed == scenario.num_requests
            assert report.energy_per_request_j > 0
            assert report.dollars_per_1k_requests > 0

    def test_single_tier_anchors_are_flat_across_weights(self, results):
        """cloud_only / device_only have no placement freedom: their rows
        must be identical whatever the weight vector."""
        for anchor in ("cloud_only", "device_only"):
            reports = [r for _, _, method, r in results if method == anchor]
            first = reports[0]
            for report in reports[1:]:
                assert report.latency_percentiles() == first.latency_percentiles()
                assert report.energy_per_request_j == first.energy_per_request_j
                assert report.total_cost_usd == first.total_cost_usd

    def test_weights_genuinely_move_the_adaptive_planner(self, results):
        by_label = {
            label: report
            for label, _, method, report in results
            if method == "hpa_vsm"
        }
        # The energy-weighted plan ships FLOPs off the device, so its p50
        # differs from the latency-optimal plan's.
        assert (
            by_label["energy"].latency_percentiles()
            != by_label["latency"].latency_percentiles()
        )

    def test_deterministic_across_seeds(self, results, scenario):
        """The stream is a metronome and the profiler is noise-free: the
        seed must not be able to move a single digit of the table."""
        reseeded = run_pareto_comparison(dataclasses.replace(scenario, seed=1234))
        assert format_pareto_comparison(reseeded) == format_pareto_comparison(results)

    def test_unsupported_method_produces_none_cell(self):
        scenario = ParetoScenario(
            model="resnet18",
            num_requests=2,
            methods=("neurosurgeon",),
            weight_vectors=(("latency", (1.0, 0.0, 0.0)),),
        )
        results = run_pareto_comparison(scenario)
        assert results == [("latency", (1.0, 0.0, 0.0), "neurosurgeon", None)]
        assert format_pareto_comparison(results)  # None cells render

    def test_format_reports_the_three_axes(self, results):
        text = format_pareto_comparison(results)
        assert "J/request" in text
        assert "$/1k req" in text
        assert "(w_lat, w_J, w_$)" in text
        assert "balanced" in text

    def test_input_validation(self):
        with pytest.raises(ValueError):
            format_pareto_comparison([])
        with pytest.raises(ValueError):
            ParetoScenario(num_requests=0)
        with pytest.raises(ValueError):
            ParetoScenario(interval_s=0.0)
        with pytest.raises(ValueError):
            ParetoScenario(methods=())
        with pytest.raises(ValueError):
            ParetoScenario(weight_vectors=())
