"""Integration tests for the per-figure/table experiment harnesses.

These use the reduced :meth:`ExperimentConfig.small` configuration so the whole
module runs in seconds; the benchmarks exercise the full paper configuration.
"""

import pytest

from repro.experiments import (
    fig01_layer_profile,
    fig04_regression,
    fig09_hpa_speedup,
    fig10_vs_baselines,
    fig11_bandwidth_sweep,
    fig12_hpa_vsm,
    fig13_communication,
    table01_pair_latency,
    table02_tier_times,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_speedup, format_table
from repro.experiments.runners import ScenarioRunner


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig.small()


@pytest.fixture(scope="module")
def runner(small_config):
    return ScenarioRunner(small_config)


class TestReporting:
    def test_format_table_alignment_and_na(self):
        text = format_table(["a", "b"], [[1.234, None], [10.0, "x"]], title="T")
        assert "T" in text and "n/a" in text and "1.23" in text

    def test_format_speedup(self):
        assert format_speedup(2.5) == "2.50x"
        assert format_speedup(None) == "n/a"


class TestFig01:
    def test_rows_and_shapes(self):
        rows = fig01_layer_profile.run_layer_profile(models=("resnet18",))
        assert rows
        summary = fig01_layer_profile.summarise(rows)
        assert summary["resnet18"]["conv_latency_s"] / summary["resnet18"]["total_latency_s"] > 0.7
        assert summary["resnet18"]["max_output_mb"] > 1.0
        assert "resnet18" in fig01_layer_profile.format_layer_profile(rows)


class TestFig04:
    def test_regression_tracks_measurements(self):
        results = fig04_regression.run_regression_experiment(calibration_models=("vgg16", "resnet18"))
        assert len(results) == 2
        cpu = results[0]
        assert cpu.mape < 0.25
        assert cpu.r_squared > 0.9
        assert "Fig. 4" in fig04_regression.format_regression(results)


class TestTable01:
    def test_six_rows_and_device_device_cheapest_for_small_conv(self):
        rows = table01_pair_latency.run_pair_latency()
        assert len(rows) == 6
        table = table01_pair_latency.format_pair_latency(rows)
        assert "Table I" in table


class TestTable02:
    def test_edge_is_bottleneck(self):
        rows = table02_tier_times.run_tier_times(models=["resnet18"])
        assert rows[0].bottleneck_tier.value == "edge"
        assert "Table II" in table02_tier_times.format_tier_times(rows)


class TestFig09:
    def test_speedups_relative_to_device(self, small_config, runner):
        cells = fig09_hpa_speedup.run_hpa_speedup(small_config, runner)
        assert len(cells) == len(small_config.models) * len(small_config.networks)
        for cell in cells:
            assert cell.speedups["device_only"] == pytest.approx(1.0)
            assert cell.speedups["hpa"] >= 1.0
        assert fig09_hpa_speedup.max_speedup(cells) > 2.0
        assert "Fig. 9" in fig09_hpa_speedup.format_hpa_speedup(cells)


class TestFig10:
    def test_hpa_at_least_matches_baselines(self, small_config, runner):
        cells = fig10_vs_baselines.run_vs_baselines(small_config, runner)
        for cell in cells:
            dads_speedup = cell.hpa_speedup_over("dads")
            assert dads_speedup is None or dads_speedup >= 0.99
        assert fig10_vs_baselines.max_speedup_over(cells, "dads") >= 1.0
        assert "Fig. 10" in fig10_vs_baselines.format_vs_baselines(cells)

    def test_neurosurgeon_only_for_chains(self, small_config, runner):
        cells = fig10_vs_baselines.run_vs_baselines(small_config, runner)
        for cell in cells:
            if cell.model == "resnet18":
                assert cell.latency_s["neurosurgeon"] is None
            if cell.model == "alexnet":
                assert cell.latency_s["neurosurgeon"] is not None


class TestFig11:
    def test_sweep_monotonicity(self):
        points = fig11_bandwidth_sweep.run_bandwidth_sweep(
            model="resnet18", bandwidths_mbps=(10, 50, 100)
        )
        assert len(points) == 3
        cloud = [p.latency_s["cloud_only"] for p in points]
        assert cloud[0] > cloud[-1]  # cloud-only improves with bandwidth
        for point in points:
            assert point.latency_s["hpa"] <= min(
                point.latency_s["edge_only"], point.latency_s["cloud_only"]
            ) * 1.01
        assert "Fig. 11" in fig11_bandwidth_sweep.format_bandwidth_sweep(points)


class TestFig12:
    def test_vsm_improves_on_hpa(self, small_config, runner):
        cells = fig12_hpa_vsm.run_hpa_vsm("wifi", small_config, runner)
        for cell in cells:
            assert cell.speedups_over_device["hpa_vsm"] >= cell.speedups_over_device["hpa"] * 0.999
            if cell.vsm_redundancy_factor is not None:
                assert cell.vsm_redundancy_factor >= 1.0
        assert "Fig. 12" in fig12_hpa_vsm.format_hpa_vsm(cells)


class TestFig13:
    def test_d3_never_ships_more_than_cloud_only(self, small_config, runner):
        cells = fig13_communication.run_communication(small_config, runner)
        for cell in cells:
            d3 = cell.megabits_to_cloud["hpa_vsm"]
            cloud_only = cell.megabits_to_cloud["cloud_only"]
            assert d3 is not None and cloud_only is not None
            assert d3 <= cloud_only + 1e-9
            fraction = cell.d3_fraction_of("cloud_only")
            assert fraction is None or fraction <= 1.0
        assert "Fig. 13" in fig13_communication.format_communication(cells)


class TestTopologyComparison:
    def test_method_by_topology_table(self):
        from repro.experiments.serving import ServingScenario
        from repro.experiments.topologies import (
            format_topology_comparison,
            run_topology_comparison,
        )

        scenario = ServingScenario(
            models=("alexnet",), num_requests=6, rate_rps=8.0, sources=("@devices",)
        )
        results = run_topology_comparison(
            methods=("cloud_only", "hpa_vsm"),
            topologies=("three_tier", "multi_device"),
            scenario=scenario,
        )
        assert [name for name, _ in results] == ["three_tier", "multi_device"]
        for _, per_method in results:
            assert set(per_method) == {"cloud_only", "hpa_vsm"}
            for report in per_method.values():
                assert report is not None and report.num_requests == 6
        table = format_topology_comparison(results)
        assert "multi_device" in table and "hpa_vsm p95 ms" in table

    def test_unsupported_method_reports_none(self):
        from repro.experiments.serving import ServingScenario
        from repro.experiments.topologies import run_topology_comparison

        # Neurosurgeon declines DAGs: resnet18 is not a chain.
        scenario = ServingScenario(models=("resnet18",), num_requests=2, rate_rps=5.0)
        results = run_topology_comparison(
            methods=("neurosurgeon",), topologies=("three_tier",), scenario=scenario
        )
        assert results[0][1]["neurosurgeon"] is None

    def test_devices_sentinel_expands_anywhere(self):
        from repro.experiments.serving import ServingScenario

        scenario = ServingScenario(topology="multi_device", sources="@devices")
        system = scenario.build_system()
        assert scenario.resolve_sources(system) == ["device-0", "device-1", "device-2"]
        mixed = ServingScenario(topology="multi_device", sources=("device-1", "@devices"))
        assert mixed.resolve_sources(system) == [
            "device-1",
            "device-0",
            "device-1",
            "device-2",
        ]


class TestAutoscaleComparison:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments.autoscale import run_autoscale_comparison

        # One balancer keeps the harness test fast; the CI smoke job runs
        # the full three-balancer table.
        return run_autoscale_comparison(balancers=("rr",))

    def test_rows_and_identical_offered_load(self, results):
        assert [(fleet, balancer) for fleet, balancer, _ in results] == [
            ("static", "rr"),
            ("elastic", "rr"),
        ]
        static, elastic = results[0][2], results[1][2]
        assert static.num_requests == elastic.num_requests > 0
        assert static.num_failed == 0 and elastic.num_failed == 0

    def test_elastic_saves_node_hours_at_equal_or_better_p99(self, results):
        """The headline trade: fewer node-hours, no p99 regression."""
        from repro.experiments.autoscale import node_hour_savings

        static, elastic = results[0][2], results[1][2]
        assert elastic.node_hours < static.node_hours
        assert (
            elastic.latency_percentiles()["p99"]
            <= static.latency_percentiles()["p99"] + 1e-9
        )
        assert node_hour_savings(results) > 0.0

    def test_only_the_elastic_fleet_scales(self, results):
        static, elastic = results[0][2], results[1][2]
        assert static.scale_up_events == static.scale_down_events == 0
        assert elastic.scale_up_events >= 1
        assert elastic.scale_down_events >= 1

    def test_table_renders(self, results):
        from repro.experiments.autoscale import format_autoscale_comparison

        table = format_autoscale_comparison(results)
        assert "node-hrs" in table and "elastic" in table and "static" in table
        assert "diurnal load" in table

    def test_scenario_validation(self):
        from repro.experiments.autoscale import (
            AutoscaleScenario,
            run_autoscale_comparison,
        )

        with pytest.raises(ValueError):
            AutoscaleScenario(duration_s=0.0)
        with pytest.raises(ValueError):
            AutoscaleScenario(trough_rps=20.0, peak_rps=10.0)
        with pytest.raises(ValueError):
            AutoscaleScenario(num_edge_nodes=1)
        with pytest.raises(ValueError):
            run_autoscale_comparison(balancers=())
