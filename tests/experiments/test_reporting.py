"""Tests for the reporting helpers (percentile math, serving tables)."""

import numpy as np
import pytest

from repro.experiments.reporting import latency_percentiles, mean, percentile


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_median_interpolates_even_sample(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_linear_interpolation_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(size=101).tolist()
        for q in (10.0, 50.0, 90.0, 95.0, 99.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_unsorted_input_handled(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestNearestRankInterpolation:
    def test_nearest_rank_returns_observed_values(self):
        values = [0.3, 0.1, 0.9, 0.5, 0.7]
        for q in (1.0, 25.0, 50.0, 75.0, 95.0, 100.0):
            assert percentile(values, q, interpolation="nearest") in values

    def test_nearest_rank_formula(self):
        # Classic nearest-rank: the ceil(q/100 * n)-th order statistic.
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0, interpolation="nearest") == 20.0
        assert percentile(values, 51.0, interpolation="nearest") == 30.0
        assert percentile(values, 100.0, interpolation="nearest") == 40.0
        assert percentile(values, 0.0, interpolation="nearest") == 10.0

    def test_nearest_matches_numpy_inverted_cdf(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(size=97).tolist()
        for q in (10.0, 50.0, 90.0, 95.0, 99.0):
            assert percentile(values, q, interpolation="nearest") == pytest.approx(
                float(np.percentile(values, q, method="inverted_cdf")), rel=1e-12
            )

    def test_linear_stays_the_default(self):
        """The flagged estimator must not disturb the pinned default — the
        golden traces and every paper table are computed with linear."""
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == percentile(values, 50.0, interpolation="linear")
        assert percentile(values, 50.0) == 2.5
        assert percentile(values, 50.0, interpolation="nearest") == 2.0

    def test_interpolations_agree_on_singleton(self):
        assert percentile([7.0], 95.0, interpolation="nearest") == 7.0

    def test_latency_percentiles_passes_flag_through(self):
        values = [1.0, 2.0, 3.0, 4.0]
        nearest = latency_percentiles(values, quantiles=(50.0,), interpolation="nearest")
        assert nearest == {"p50": 2.0}

    def test_unknown_interpolation_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 50.0, interpolation="midpoint")


class TestLatencyPercentiles:
    def test_default_keys(self):
        summary = latency_percentiles(list(range(1, 101)))
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_custom_quantiles(self):
        summary = latency_percentiles([1.0, 2.0], quantiles=(25.0,))
        assert set(summary) == {"p25"}


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
