"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.cli import SCENARIO_NAMES, _scenario_registry, build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_scenario_names_resolve(self):
        registry = _scenario_registry()
        assert set(SCENARIO_NAMES) == set(registry)
        for run_fn, format_fn in registry.values():
            assert callable(run_fn) and callable(format_fn)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "fig99"])


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--model", "alexnet", "--edge-nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end" in out and "alexnet" in out

    def test_serve_command(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "5",
                    "--rate",
                    "10",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plans computed" in out and "latency p50" in out

    def test_bad_inputs_fail_cleanly(self, capsys):
        assert main(["serve", "--model", "nope"]) == 1
        assert "unknown model" in capsys.readouterr().err
        assert main(["serve", "--model", "alexnet", "--rate", "0"]) == 1
        assert "rate must be positive" in capsys.readouterr().err
        assert (
            main(["serve", "--model", "alexnet", "--rate", "0", "--arrival", "constant"]) == 1
        )
        assert "rate must be positive" in capsys.readouterr().err

    def test_serve_constant_arrival_uncontended(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "3",
                    "--rate",
                    "1",
                    "--arrival",
                    "constant",
                    "--uncontended-links",
                ]
            )
            == 0
        )
        assert "3 requests" in capsys.readouterr().out


class TestTopologyFlag:
    def test_run_with_preset_topology(self, capsys):
        assert main(["run", "--model", "alexnet", "--topology", "device_gateway"]) == 0
        assert "end-to-end" in capsys.readouterr().out

    def test_serve_spreads_over_fleet_devices(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--topology",
                    "multi_device",
                    "--requests",
                    "6",
                    "--rate",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "device-1" in out and "device-2" in out  # utilisation rows

    def test_serve_with_topology_json_file(self, capsys, tmp_path):
        from repro.network.topology import get_topology

        path = tmp_path / "rack.json"
        path.write_text(get_topology("hetero_edge").to_json())
        assert (
            main(
                ["serve", "--model", "alexnet", "--topology", str(path), "--requests", "3"]
            )
            == 0
        )
        assert "plans computed" in capsys.readouterr().out

    def test_unknown_topology_fails_cleanly(self, capsys):
        assert main(["run", "--model", "alexnet", "--topology", "moebius"]) == 1
        assert "unknown topology" in capsys.readouterr().err


class TestFaultsFlag:
    def test_serve_with_chaos_spec(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--faults",
                    "chaos:7",
                    "--requests",
                    "10",
                    "--rate",
                    "8",
                ]
            )
            == 0
        )
        assert "plans computed" in capsys.readouterr().out

    def test_serve_with_schedule_file(self, capsys, tmp_path):
        from repro.network.faults import FaultSchedule, NodeDown, NodeUp

        path = tmp_path / "faults.json"
        path.write_text(
            FaultSchedule([NodeDown(0.2, "edge-0"), NodeUp(1.0, "edge-0")]).to_json()
        )
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--faults",
                    str(path),
                    "--requests",
                    "8",
                    "--rate",
                    "10",
                    "--max-retries",
                    "2",
                ]
            )
            == 0
        )
        assert "plans computed" in capsys.readouterr().out

    def test_bad_chaos_spec_fails_cleanly(self, capsys):
        assert main(["serve", "--model", "alexnet", "--faults", "chaos:banana"]) == 1
        assert "chaos" in capsys.readouterr().err

    def test_schedule_targeting_unknown_node_fails_cleanly(self, capsys, tmp_path):
        from repro.network.faults import FaultSchedule, NodeDown

        path = tmp_path / "faults.json"
        path.write_text(FaultSchedule([NodeDown(0.5, "edge-42")]).to_json())
        assert main(["serve", "--model", "alexnet", "--faults", str(path)]) == 1
        assert "unknown node" in capsys.readouterr().err


class TestSchedulerFlag:
    def test_serve_with_batch_scheduler_and_slo(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--method",
                    "device_only",
                    "--scheduler",
                    "batch",
                    "--slo-ms",
                    "500",
                    "--requests",
                    "20",
                    "--rate",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[batch]" in out
        assert "goodput" in out and "SLO attainment" in out
        assert "batching:" in out

    def test_serve_with_edf_sheds_under_overload(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--method",
                    "device_only",
                    "--scheduler",
                    "edf",
                    "--slo-ms",
                    "500",
                    "--requests",
                    "20",
                    "--rate",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[edf]" in out and "shed" in out

    def test_default_scheduler_output_unchanged(self, capsys):
        assert main(["serve", "--model", "alexnet", "--requests", "5", "--rate", "10"]) == 0
        out = capsys.readouterr().out
        assert "[fifo]" not in out and "goodput" not in out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--scheduler", "lifo"])

    def test_bad_slo_fails_cleanly(self, capsys):
        assert main(["serve", "--model", "alexnet", "--slo-ms", "0"]) == 1
        assert "--slo-ms must be positive" in capsys.readouterr().err

class TestElasticFlags:
    def test_serve_with_autoscaler_and_balancer(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "20",
                    "--rate",
                    "8",
                    "--autoscale",
                    "target-util",
                    "--balancer",
                    "p2c",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "latency p50" in out and "20 requests" in out

    def test_serve_with_elasticity_schedule_file(self, capsys, tmp_path):
        schedule = tmp_path / "fleet.json"
        schedule.write_text(
            '{"name": "cli-fleet", "events": ['
            '{"at": 0.2, "kind": "node_join", "target": "edge-2", "provision_s": 0.1},'
            '{"at": 1.0, "kind": "node_drain", "target": "edge-1"}]}'
        )
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "10",
                    "--rate",
                    "10",
                    "--elasticity",
                    str(schedule),
                    "--balancer",
                    "jsq",
                ]
            )
            == 0
        )
        assert "10 requests" in capsys.readouterr().out

    def test_unknown_autoscaler_policy_fails_cleanly(self, capsys):
        assert (
            main(["serve", "--model", "alexnet", "--autoscale", "bogus"]) == 1
        )
        assert "unknown autoscaler policy" in capsys.readouterr().err

    def test_unknown_balancer_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            # --balancer validates through argparse choices.
            build_parser().parse_args(
                ["serve", "--model", "alexnet", "--balancer", "bogus"]
            )

    def test_elasticity_schedule_for_unknown_node_fails_cleanly(
        self, capsys, tmp_path
    ):
        schedule = tmp_path / "bad.json"
        schedule.write_text(
            '{"events": [{"at": 0.5, "kind": "node_drain", "target": "edge-99"}]}'
        )
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "5",
                    "--elasticity",
                    str(schedule),
                ]
            )
            == 1
        )
        assert "edge-99" in capsys.readouterr().err


class TestEconomicsFlags:
    def test_serve_with_economics_prints_the_summary_line(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "5",
                    "--rate",
                    "10",
                    "--economics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "economics:" in out
        assert "J/request" in out and "/1k requests" in out

    def test_serve_with_weights_implies_economics(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--model",
                    "alexnet",
                    "--requests",
                    "5",
                    "--rate",
                    "10",
                    "--weights",
                    "0,1,0",
                ]
            )
            == 0
        )
        assert "economics:" in capsys.readouterr().out

    def test_default_serve_output_has_no_economics_line(self, capsys):
        assert main(["serve", "--model", "alexnet", "--requests", "3", "--rate", "10"]) == 0
        assert "economics:" not in capsys.readouterr().out

    def test_malformed_weights_fail_cleanly(self, capsys):
        assert main(["serve", "--model", "alexnet", "--weights", "1,2"]) == 1
        assert "three comma-separated" in capsys.readouterr().err
        assert main(["serve", "--model", "alexnet", "--weights", "a,b,c"]) == 1
        assert "could not be parsed" in capsys.readouterr().err

    def test_all_zero_weights_fail_cleanly(self, capsys):
        assert main(["serve", "--model", "alexnet", "--weights", "0,0,0"]) == 1
        assert "cannot all be zero" in capsys.readouterr().err
