"""The engine benchmark harness itself (tiny sizes — speed is CI's job)."""

from __future__ import annotations

import json

import pytest

from repro.benchmarks import engine
from repro.cli import main as cli_main


class TestRunSingle:
    def test_fifo_cell_shape(self):
        cell = engine.run_single(200, "fifo")
        assert cell["requests"] == 200
        assert cell["scheduler"] == "fifo"
        assert cell["completed"] == 200
        assert cell["rejected"] == 0
        assert cell["events"] > 200  # at least one event per request
        assert cell["wall_s"] > 0
        assert cell["events_per_s"] > 0
        assert cell["requests_per_s"] > 0
        assert cell["peak_rss_mb"] > 0

    def test_edf_cell_exercises_admission(self):
        cell = engine.run_single(200, "edf")
        # The scenario overloads a 250 ms SLO: admission must shed work,
        # which is exactly the hot path this cell exists to measure.
        assert cell["completed"] + cell["rejected"] == 200
        assert cell["rejected"] > 0

    def test_economics_cell_matches_the_fifo_schedule(self):
        # The metering runs at report-build time only, so the economics
        # cell's simulated schedule — event count included — must be
        # indistinguishable from the static fifo cell's.
        fifo = engine.run_single(200, "fifo")
        economics = engine.run_single(200, "economics")
        assert economics["events"] == fifo["events"]
        assert economics["completed"] == fifo["completed"] == 200
        assert economics["rejected"] == 0


class TestRegressionCheck:
    def _payload(self, events_per_s):
        return {
            "results": {"10000": {"fifo": {"events_per_s": events_per_s}}}
        }

    def test_within_tolerance_passes(self, tmp_path):
        reference = tmp_path / "BENCH_engine.json"
        reference.write_text(json.dumps(self._payload(100_000.0)))
        assert engine.check_regression(self._payload(85_000.0), str(reference), 0.2) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        reference = tmp_path / "BENCH_engine.json"
        reference.write_text(json.dumps(self._payload(100_000.0)))
        failures = engine.check_regression(self._payload(70_000.0), str(reference), 0.2)
        assert len(failures) == 1
        assert "fifo" in failures[0]

    def test_unknown_cells_are_ignored(self, tmp_path):
        reference = tmp_path / "BENCH_engine.json"
        reference.write_text(json.dumps({"results": {}}))
        assert engine.check_regression(self._payload(1.0), str(reference), 0.2) == []


class TestCli:
    def test_bench_engine_runs_and_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        status = cli_main(
            [
                "bench",
                "engine",
                "--requests",
                "200",
                "--schedulers",
                "fifo",
                "--no-isolate",
                "--write",
                "out.json",
            ]
        )
        assert status == 0
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["schema"] == 1
        assert payload["baseline_before"]["events_per_s"] == pytest.approx(33907.0)
        assert payload["results"]["200"]["fifo"]["completed"] == 200

    def test_floor_violation_fails(self):
        status = cli_main(
            [
                "bench",
                "engine",
                "--requests",
                "200",
                "--schedulers",
                "fifo",
                "--no-isolate",
                "--floor",
                "1e18",
            ]
        )
        assert status == 1

    def test_unknown_scheduler_rejected(self):
        assert (
            cli_main(["bench", "engine", "--schedulers", "nope", "--no-isolate"]) == 1
        )
