"""Golden-trace regression harness: the serving engine's full event
timelines are pinned beyond summary statistics.

Each canonical scenario (steady Poisson stream, chaos fault injection,
multi-device fleet) is re-simulated and its *complete* serialized timeline —
every compute event, transfer, status and timestamp, at full float
precision — is diffed exactly against the committed JSON fixture.  Any
behaviour change in the default (FIFO, admission-free) engine shows up here
even when p95/throughput happen to agree.

After an intentional engine change, regenerate with::

    PYTHONPATH=src python -m repro.testing regen-goldens
"""

import json
from pathlib import Path

import pytest

from repro.testing import (
    GOLDEN_SCENARIOS,
    golden_trace,
    load_golden,
    serialize_report,
    write_goldens,
)

GOLDENS_DIR = Path(__file__).parent / "goldens"


def roundtrip(document: dict) -> dict:
    """Normalize through JSON so float repr and key types match the fixture."""
    return json.loads(json.dumps(document, sort_keys=True))


@pytest.fixture(scope="module")
def traces():
    """Every canonical scenario simulated once (they are not free)."""
    return {name: golden_trace(name) for name in GOLDEN_SCENARIOS}


class TestGoldenTraces:
    def test_fixtures_are_committed(self):
        for name in GOLDEN_SCENARIOS:
            assert (GOLDENS_DIR / f"{name}.json").exists(), (
                f"missing fixture for {name!r}; run "
                f"`PYTHONPATH=src python -m repro.testing regen-goldens`"
            )

    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_timeline_is_bit_identical(self, traces, name):
        expected = load_golden(name, GOLDENS_DIR)
        actual = roundtrip(traces[name])
        # Compare piecewise first so a regression names the divergent request
        # instead of dumping two 50 kB documents.
        assert actual.keys() == expected.keys()
        for key in expected:
            if key != "records":
                assert actual[key] == expected[key], f"{name}: {key} diverged"
        assert len(actual["records"]) == len(expected["records"])
        for mine, theirs in zip(actual["records"], expected["records"]):
            assert mine == theirs, f"{name}: request {theirs['request_id']} diverged"

    def test_traces_cover_the_interesting_regimes(self, traces):
        """The three fixtures must keep exercising what they were chosen for."""
        steady = traces["steady"]
        assert steady["num_failed"] == 0 and not steady["node_down_s"]
        chaos = traces["chaos"]
        assert chaos["node_down_s"] or chaos["link_down_s"], (
            "chaos fixture no longer injects any downtime"
        )
        assert any(r["retries"] > 0 for r in chaos["records"]) or chaos["num_failed"], (
            "chaos fixture no longer disturbs any request"
        )
        fleet = traces["fleet"]
        devices = {
            e["node"]
            for r in fleet["records"]
            for e in r["events"]
            if e["tier"] == "device"
        }
        assert len(devices) > 1, "fleet fixture no longer spreads over the devices"
        elastic = traces["elastic"]
        assert elastic["num_failed"] == 0, "drains must never abort requests"
        assert elastic["node_down_s"].get("edge-1"), (
            "elastic fixture no longer drains edge-1"
        )
        joined = [
            e
            for r in elastic["records"]
            for e in r["events"]
            if e["node"] == "edge-2"
        ]
        assert joined, "elastic fixture no longer routes work to the joined replica"
        assert all(e["start_s"] >= 0.4 + 0.3 for e in joined), (
            "work started on edge-2 before its provisioning delay elapsed"
        )
        multimodel = traces["multimodel"]
        memory = multimodel.get("memory")
        assert memory, "multimodel fixture no longer exercises the weight caches"
        assert memory["cold_starts"] > 0, "multimodel fixture lost its cold starts"
        assert memory["weight_evictions"] > 0, (
            "multimodel fixture no longer thrashes the tight cache"
        )
        assert any(
            e["kind"] == "coldstart"
            for r in multimodel["records"]
            for e in r["events"]
        ), "multimodel fixture no longer records cold-start timeline events"
        assert all(
            "memory" not in traces[name] for name in ("steady", "chaos", "fleet", "elastic")
        ), "a memory-free fixture grew a memory block — the inert path leaked"
        adaptation = traces["adaptation"]
        calibration = adaptation.get("calibration")
        assert calibration, "adaptation fixture no longer runs calibrated"
        assert calibration["calibration_updates"] > 0, (
            "adaptation fixture absorbed no calibration updates"
        )
        assert calibration["proactive_repartitions"] > 0, (
            "adaptation fixture no longer repartitions ahead of the breach"
        )
        assert calibration["first_adaptation_s"] is not None
        assert all(
            "calibration" not in traces[name]
            for name in ("steady", "chaos", "fleet", "elastic", "multimodel")
        ), "a calibration-free fixture grew a calibration block — the inert path leaked"


class TestRegeneration:
    def test_regen_writes_identical_fixtures(self, traces, tmp_path):
        """`regen-goldens` output equals both the live run and the fixtures."""
        paths = write_goldens(tmp_path)
        assert {p.name for p in paths} == {f"{n}.json" for n in GOLDEN_SCENARIOS}
        for name in GOLDEN_SCENARIOS:
            regenerated = json.loads((tmp_path / f"{name}.json").read_text())
            assert regenerated == roundtrip(traces[name])

    def test_serializer_is_deterministic(self):
        report = GOLDEN_SCENARIOS["steady"]()
        assert serialize_report(report) == serialize_report(report)
