"""Economics metering of the serving engine: joules and dollars from timelines.

The accounting runs entirely at report-build time off integrals the engine
maintains anyway, so the contract has three parts:

* **inert by default** — economics off produces the exact same schedule and
  a report with zero totals and no summary line;
* **exact on the steady path** — compute joules are busy-seconds times
  active watts, idle joules and dollars are powered-on time times the
  node's idle draw / price;
* **exact under faults and retries** — total compute joules equal the
  integral of *executed* work read independently off the event timelines:
  truncated work consumed energy up to the kill instant (no free energy),
  retried work is billed once per executed attempt (no double billing),
  and downtime draws and bills nothing.
"""

from collections import defaultdict

import pytest

from repro.core.d3 import D3Config, D3System
from repro.runtime.workload import Workload
from repro.testing import serialize_report


def _system(num_edge_nodes=3):
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=num_edge_nodes,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


def _workload():
    return Workload.poisson("vgg16", num_requests=16, rate_rps=6.0, seed=5)


def _executed_seconds_by_node(report):
    """Integral of executed compute work per node, read off the timelines.

    Killed tasks' events are truncated at the kill instant, so this is the
    work that *actually ran* — the quantity energy must be proportional to.
    """
    executed = defaultdict(float)
    for record in report.records:
        for event in record.report.events:
            if event.kind == "compute":
                executed[event.node] += event.end_s - event.start_s
    return executed


def _expected_compute_joules(cluster, busy_by_node):
    return sum(
        busy_by_node.get(node.name, 0.0)
        * node.hardware.energy.active_watts(node.hardware.effective_gflops)
        for node in cluster.all_nodes
    )


class TestEconomicsOffByDefault:
    def test_default_report_is_unmetered(self):
        report = _system().serve(_workload())
        assert not report.economics_enabled
        assert report.compute_energy_j == 0.0
        assert report.radio_energy_j == 0.0
        assert report.idle_energy_j == 0.0
        assert report.total_cost_usd == 0.0
        assert report.total_energy_j == 0.0
        assert report.energy_per_request_j == 0.0
        assert report.dollars_per_1k_requests == 0.0
        assert "economics:" not in report.summary()
        assert "economics" not in serialize_report(report)

    def test_metering_does_not_change_the_schedule(self):
        baseline = serialize_report(_system().serve(_workload()))
        metered_report = _system().serve(_workload(), economics=True)
        metered = serialize_report(metered_report)
        assert metered.pop("economics")  # present, and non-trivial
        assert metered == baseline
        assert "economics:" in metered_report.summary()


class TestSteadyStateAccounting:
    @pytest.fixture(scope="class")
    def served(self):
        system = _system()
        report = system.serve(_workload(), economics=True)
        return system, report

    def test_compute_energy_is_busy_seconds_times_watts(self, served):
        system, report = served
        assert report.compute_energy_j == pytest.approx(
            _expected_compute_joules(system.cluster, report.node_busy_s)
        )
        assert report.compute_energy_j > 0

    def test_idle_energy_and_dollars_cover_the_full_makespan(self, served):
        system, report = served
        # No faults, no elasticity: every node is up for the whole run.
        assert not report.node_down_s
        expected_idle = sum(
            report.makespan_s * node.hardware.energy.idle_watts
            for node in system.cluster.all_nodes
        )
        expected_cost = sum(
            report.makespan_s * node.price_per_s for node in system.cluster.all_nodes
        )
        assert report.idle_energy_j == pytest.approx(expected_idle)
        assert report.total_cost_usd == pytest.approx(expected_cost)
        assert report.total_cost_usd > 0  # edge + cloud bill by the second

    def test_derived_per_request_metrics(self, served):
        _, report = served
        assert report.total_energy_j == pytest.approx(
            report.compute_energy_j + report.radio_energy_j + report.idle_energy_j
        )
        assert report.energy_per_request_j == pytest.approx(
            report.total_energy_j / report.num_requests
        )
        assert report.dollars_per_1k_requests == pytest.approx(
            report.total_cost_usd / report.num_requests * 1000.0
        )

    def test_radio_energy_matches_device_uplink_bytes(self, served):
        from repro.core.placement import Tier

        system, report = served
        device = system.cluster.primary_node(Tier.DEVICE)
        rate = device.hardware.energy.radio_joules_per_byte
        carried = sum(
            link.bytes_carried
            for link in system.cluster.shared_links.values()
            if "device" in (link.source, link.destination)
        )
        assert rate > 0 and carried > 0
        assert report.radio_energy_j == pytest.approx(rate * carried)


class TestEconomicsUnderFaults:
    """The chaos schedule kills mid-task and forces failover retries — the
    regime where naive per-plan energy accounting double-bills or hands out
    free energy.  The invariant: compute joules equal the watts-weighted
    integral of executed work, read independently off the event timelines."""

    @pytest.fixture(scope="class")
    def served(self):
        system = _system()
        report = system.serve(
            _workload(), faults="chaos:2", max_retries=2, economics=True
        )
        return system, report

    def test_chaos_schedule_actually_disrupts(self, served):
        _, report = served
        assert report.failover_replans > 0
        assert report.node_down_s  # somebody crashed

    def test_busy_integral_matches_the_event_timelines(self, served):
        """No free energy, no double billing: the engine's busy-second
        integral (what energy is billed from) equals the sum of the
        truncation-aware event durations (what actually executed)."""
        _, report = served
        executed = _executed_seconds_by_node(report)
        for name, busy_s in report.node_busy_s.items():
            assert executed.get(name, 0.0) == pytest.approx(busy_s, abs=1e-9), name

    def test_compute_energy_is_the_integral_of_executed_work(self, served):
        system, report = served
        executed = _executed_seconds_by_node(report)
        assert report.compute_energy_j == pytest.approx(
            _expected_compute_joules(system.cluster, executed)
        )

    def test_truncated_attempts_still_paid_for_their_partial_work(self, served):
        """At least one retried request's timeline carries work from a
        truncated earlier attempt — energy the request consumed even though
        the attempt never completed."""
        _, report = served
        retried = [record for record in report.records if record.retries > 0]
        assert retried
        executed = _executed_seconds_by_node(report)
        assert sum(executed.values()) > 0

    def test_downtime_draws_and_bills_nothing(self, served):
        system, report = served
        expected_idle = sum(
            max(0.0, report.makespan_s - report.node_down_s.get(node.name, 0.0))
            * node.hardware.energy.idle_watts
            for node in system.cluster.all_nodes
        )
        expected_cost = sum(
            max(0.0, report.makespan_s - report.node_down_s.get(node.name, 0.0))
            * node.price_per_s
            for node in system.cluster.all_nodes
        )
        assert report.idle_energy_j == pytest.approx(expected_idle)
        assert report.total_cost_usd == pytest.approx(expected_cost)
        # And the downtime genuinely reduced the bill versus full uptime.
        full_uptime_idle = sum(
            report.makespan_s * node.hardware.energy.idle_watts
            for node in system.cluster.all_nodes
        )
        assert report.idle_energy_j < full_uptime_idle

    def test_serialized_economics_block(self, served):
        _, report = served
        document = serialize_report(report)
        assert document["economics"] == {
            "compute_energy_j": report.compute_energy_j,
            "radio_energy_j": report.radio_energy_j,
            "idle_energy_j": report.idle_energy_j,
            "total_cost_usd": report.total_cost_usd,
        }
