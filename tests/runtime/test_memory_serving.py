"""Integration tests: memory-constrained serving end to end.

The unit suite pins the cache data structure; this one pins the *serving*
semantics — cold starts gating dispatch, pins tracking in-flight requests,
the repair flipping placements, and the inert configuration staying
bit-identical to the memory-free engine.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.d3 import D3Config, D3System
from repro.experiments.multimodel import (
    MultimodelScenario,
    run_partition_flip,
)
from repro.network.topology import InsufficientMemoryError
from repro.runtime.artifacts import MemoryModel
from repro.runtime.workload import Workload
from repro.testing import serialize_report


def build_system(**overrides):
    config = dict(
        network="wifi", num_edge_nodes=2, use_regression=False, profiler_noise_std=0.0
    )
    config.update(overrides)
    return D3System(D3Config(**config))


def two_model_workload(num_requests=10, seed=13):
    return Workload.poisson(
        ["vgg16", "alexnet"], num_requests=num_requests, rate_rps=4.0, seed=seed
    )


class TestInertPath:
    def test_memory_none_is_bit_identical(self):
        """serve() with every memory knob inert equals the pre-memory engine."""
        workload = two_model_workload()
        baseline = serialize_report(build_system().serve(workload))
        inert = serialize_report(
            build_system().serve(workload, memory=None, codec=None, eviction=None)
        )
        assert json.dumps(baseline, sort_keys=True) == json.dumps(inert, sort_keys=True)
        assert "memory" not in inert

    def test_codec_alone_activates_the_memory_path(self):
        report = build_system().serve(two_model_workload(), codec="zxc")
        assert report.cold_starts > 0


class TestColdStarts:
    def test_cold_start_once_then_warm(self):
        """A single-model stream loads once per node, then every lookup hits."""
        system = build_system()
        workload = Workload.poisson("alexnet", num_requests=8, rate_rps=2.0, seed=1)
        report = system.serve(workload, memory=MemoryModel(budget_gb=2.0, codec="zxc"))
        # One cold start per node the plan touches, never per request.
        assert 0 < report.cold_starts <= 4
        assert report.weight_evictions == 0
        assert report.weight_cache_hits > 0
        assert report.cold_start_s > 0.0
        assert report.num_failed == 0

    def test_cold_starts_appear_on_the_timeline(self):
        system = build_system()
        workload = Workload.poisson("alexnet", num_requests=4, rate_rps=2.0, seed=1)
        report = system.serve(workload, memory=MemoryModel(budget_gb=2.0, codec="zxc"))
        labels = {
            event.label
            for record in report.records
            for event in record.report.events
            if event.kind == "coldstart"
        }
        assert "load:alexnet" in labels

    def test_tight_budget_thrashes(self):
        """Two models that cannot co-reside evict each other under LRU."""
        report = build_system().serve(
            two_model_workload(num_requests=12),
            memory=MemoryModel(budget_gb=0.7, codec="zxc", eviction="lru"),
        )
        assert report.weight_evictions > 0
        assert report.num_failed == 0
        # Peak residency respects the budget on the constrained tiers but may
        # exceed it overall (the cloud store keeps hardware capacity).
        assert report.peak_resident_bytes > 0

    def test_warm_mode_runs_caches_without_latency(self):
        """warm=True prices the machinery: counters move, no time is charged."""
        workload = two_model_workload()
        cold = build_system().serve(
            workload, memory=MemoryModel(budget_gb=2.0, codec="zxc")
        )
        warm = build_system().serve(
            workload, memory=MemoryModel(budget_gb=2.0, codec="zxc", warm=True)
        )
        baseline = build_system().serve(workload)
        assert warm.cold_start_s == 0.0
        assert warm.cold_starts > 0
        assert cold.cold_start_s > 0.0
        # Warm serving is schedule-identical to the memory-free engine.
        assert warm.latency_percentiles() == baseline.latency_percentiles()

    def test_zxc_beats_symmetric_on_cold_start_at_equal_ratio(self):
        workload = two_model_workload()
        by_codec = {}
        for codec in ("symmetric", "zxc"):
            report = build_system().serve(
                workload, memory=MemoryModel(budget_gb=2.0, codec=codec)
            )
            by_codec[codec] = report
        sym, zxc = by_codec["symmetric"], by_codec["zxc"]
        assert sym.cold_starts == zxc.cold_starts
        assert zxc.cold_start_s < sym.cold_start_s


class TestReporting:
    def test_summary_lines(self):
        report = build_system().serve(
            two_model_workload(num_requests=12),
            memory=MemoryModel(budget_gb=0.7, codec="zxc"),
        )
        summary = report.summary()
        assert "memory:" in summary
        assert "cold start" in summary
        assert "per-model" in summary
        per_model = report.model_percentiles()
        assert set(per_model) == {"vgg16", "alexnet"}
        for stats in per_model.values():
            assert 0 < stats["p50"] <= stats["p99"]

    def test_hit_rate_property(self):
        report = build_system().serve(
            two_model_workload(), memory=MemoryModel(budget_gb=2.0, codec="zxc")
        )
        assert 0.0 <= report.weight_cache_hit_rate <= 1.0
        lookups = report.weight_cache_hits + report.weight_cache_misses
        assert report.weight_cache_hit_rate == report.weight_cache_hits / lookups

    def test_memory_free_report_defaults(self):
        report = build_system().serve(two_model_workload())
        assert report.cold_starts == 0
        assert report.weight_cache_hit_rate == 1.0
        assert report.peak_resident_bytes == 0


class TestPlanning:
    def test_tight_memory_flips_the_partition(self):
        loose, tight, changed = run_partition_flip(MultimodelScenario())
        assert changed, f"placement did not change: {loose} vs {tight}"
        assert "cloud=0" in loose and "cloud=23" in tight

    def test_memory_keyed_plans_do_not_alias(self):
        """The same system serves loose then tight; the cached loose plan
        must not be reused for the memory-constrained stream."""
        system = build_system()
        probe = Workload.constant_rate("vgg16", num_requests=1, interval_s=1.0)
        loose = system.plan_requests(probe)[0].plan
        tight = system.plan_requests(
            probe, memory=MemoryModel(budget_gb=0.25, codec="zxc")
        )[0].plan
        assert loose.assignments != tight.assignments
        # And the memory-free path again: still the original plan.
        again = system.plan_requests(probe)[0].plan
        assert again.assignments == loose.assignments

    def test_infeasible_deployment_is_rejected(self):
        """A model bigger than every node -> typed topology error."""
        system = build_system()
        roomiest_gb = max(
            node.hardware.memory_gb
            for node in system.topology.nodes.values()
            if node.hardware is not None
        )
        too_big = int((roomiest_gb + 1.0) * 1024**3)
        with pytest.raises(InsufficientMemoryError):
            system.topology.validate(min_model_bytes=too_big)
        # The serve path runs the same check and passes for real models.
        report = system.serve(
            Workload.poisson("alexnet", num_requests=2, rate_rps=2.0, seed=0),
            memory=MemoryModel(budget_gb=2.0, codec="zxc"),
        )
        assert report.num_failed == 0


class TestCli:
    def test_serve_with_memory_flags(self, capsys):
        code = cli_main(
            [
                "serve",
                "--model",
                "vgg16,alexnet",
                "--requests",
                "6",
                "--rate",
                "4.0",
                "--memory-budget",
                "0.7",
                "--codec",
                "zxc",
                "--eviction",
                "lru",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "memory:" in out
        assert "per-model" in out

    def test_serve_multimodel_without_memory(self, capsys):
        code = cli_main(
            ["serve", "--model", "resnet18,alexnet", "--requests", "6", "--rate", "4.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-model" in out
        assert "memory:" not in out

    def test_bad_codec_is_rejected_by_the_parser(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                ["serve", "--model", "alexnet", "--requests", "2", "--codec", "gzip"]
            )
        assert "--codec" in capsys.readouterr().err
