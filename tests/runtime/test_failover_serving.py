"""Fault-tolerant serving: failure injection, failover replanning, recovery.

Covers the acceptance scenario of the fault-injection subsystem (an edge node
killed and recovered mid-workload completes with recorded failover replans and
availability metrics, while the no-fault path stays bit-identical to the
fault-free serving engine), the degraded plan-cache keying, the bounded retry
budget, link failures and rerouting, degenerate all-failed reports, and the
engine's standalone (no-replanner) failover behaviour.
"""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.core.placement import Tier
from repro.network.faults import FaultSchedule, LinkDown, LinkUp, NodeDown, NodeUp
from repro.runtime.cluster import Cluster
from repro.runtime.serving import ServingReport, ServingRequest, ServingSimulator
from repro.runtime.workload import Workload


def _system(**overrides) -> D3System:
    config = dict(
        network="wifi",
        num_edge_nodes=4,
        use_regression=False,
        profiler_noise_std=0.0,
    )
    config.update(overrides)
    return D3System(D3Config(**config))


@pytest.fixture(scope="module")
def vgg_workload():
    return Workload.poisson("vgg16", num_requests=40, rate_rps=8.0, seed=0)


@pytest.fixture(scope="module")
def edge_outage():
    """Kills edge-0 while work is provably in flight, recovers it later."""
    return FaultSchedule([NodeDown(2.5, "edge-0"), NodeUp(6.5, "edge-0")])


def _timeline(report: ServingReport):
    return [
        (r.request_id, r.arrival_s, r.completion_s, r.status, r.retries)
        for r in report.records
    ]


class TestAcceptanceScenario:
    """The ISSUE's acceptance criterion, end to end."""

    def test_kill_and_recover_edge_node_mid_workload(self, vgg_workload, edge_outage):
        report = _system().serve(vgg_workload, faults=edge_outage)
        # every request terminates, with at least one recorded failover replan
        assert report.num_requests == len(vgg_workload)
        assert report.failover_replans >= 1
        assert report.num_retried >= 1
        # availability metrics are present and coherent
        assert 0.0 < report.availability <= 1.0
        assert report.num_completed + report.num_failed == report.num_requests
        assert report.node_down_s.get("edge-0", 0.0) == pytest.approx(4.0)
        assert "availability" in report.summary()
        # no compute event overlaps the outage on the dead node
        for record in report.records:
            for event in record.report.events:
                if event.node == "edge-0":
                    assert not (event.start_s < 6.5 and event.end_s > 2.5)

    def test_no_fault_run_bit_identical_to_fault_free_path(self, vgg_workload):
        baseline = _system().serve(vgg_workload)
        empty = _system().serve(vgg_workload, faults=FaultSchedule([]))
        assert _timeline(empty) == _timeline(baseline)
        assert empty.latency_percentiles() == baseline.latency_percentiles()
        assert empty.summary() == baseline.summary()
        assert empty.failover_replans == 0
        assert empty.node_down_s == {}

    def test_seeded_determinism(self, vgg_workload):
        schedule = "chaos:7"
        first = _system().serve(vgg_workload, faults=schedule)
        second = _system().serve(vgg_workload, faults=schedule)
        assert _timeline(first) == _timeline(second)
        assert first.failover_replans == second.failover_replans
        assert first.node_down_s == second.node_down_s
        assert first.summary() == second.summary()

    def test_failed_requests_excluded_from_latency_metrics(self, vgg_workload):
        # chaos:7 at this load produces failures (seen in the example run);
        # if a particular environment yields none the assertions still hold.
        report = _system().serve(vgg_workload, faults="chaos:7")
        completed = [r for r in report.records if r.completed]
        assert len(report.latencies_s) == len(completed)
        assert report.throughput_rps == pytest.approx(
            len(completed) / report.makespan_s
        )


class TestDegradedPlanning:
    def test_degraded_plans_keyed_separately(self, vgg_workload, edge_outage):
        system = _system()
        report = system.serve(vgg_workload, faults=edge_outage)
        # healthy plan + degraded plan = 2 misses on the first episode
        assert report.cache_misses == 2
        # a healthy re-serve of the same stream is all hits: the degraded
        # entries did not poison the healthy cache
        healthy = system.serve(vgg_workload)
        assert healthy.cache_misses == 0
        assert healthy.repartitions == 0

    def test_degraded_shape_reuses_cache_across_episodes(self, vgg_workload, edge_outage):
        system = _system()
        first = system.serve(vgg_workload, faults=edge_outage)
        again = system.serve(vgg_workload, faults=edge_outage)
        assert first.cache_misses == 2
        assert again.cache_misses == 0  # both shapes already cached

    def test_arrivals_during_outage_avoid_dead_node(self):
        system = _system()
        workload = Workload.constant_rate("vgg16", num_requests=6, interval_s=1.0)
        schedule = FaultSchedule([NodeDown(0.5, "edge-0"), NodeUp(4.5, "edge-0")])
        report = system.serve(workload, faults=schedule)
        for record in report.records:
            if 0.5 <= record.arrival_s < 4.5 and record.completed and record.retries == 0:
                nodes = {event.node for event in record.report.events}
                assert "edge-0" not in nodes

    def test_retry_budget_bounds_failures(self, vgg_workload, edge_outage):
        generous = _system().serve(vgg_workload, faults=edge_outage, max_retries=3)
        assert generous.num_failed == 0
        strict = _system().serve(vgg_workload, faults=edge_outage, max_retries=0)
        # the same aborts now fail outright instead of retrying
        assert strict.num_failed >= generous.num_retried > 0
        assert strict.failover_replans == 0

    def test_recovery_fails_back_to_healthy_plan(self, vgg_workload):
        system = _system()
        outage = FaultSchedule([NodeDown(2.5, "edge-0"), NodeUp(4.0, "edge-0")])
        report = system.serve(vgg_workload, faults=outage)
        # requests arriving after the recovery run on the full rack again
        post = [r for r in report.records if r.arrival_s > 4.0 and r.retries == 0]
        assert post, "workload must extend past the recovery"
        assert any(
            "edge-0" in {e.node for e in r.report.events} for r in post if r.completed
        )


class TestLinkFailures:
    def test_transfers_reroute_around_dark_wire(self):
        # device->edge traffic must detour via the cloud when the LAN dies
        system = _system(num_edge_nodes=1)
        workload = Workload.single("vgg16")
        schedule = FaultSchedule([LinkDown(0.0, "device-edge")])
        report = system.serve(workload, faults=schedule)
        record = report.records[0]
        assert record.completed
        # the detour exists and the request is slower than the healthy run
        healthy = _system(num_edge_nodes=1).serve(workload)
        assert record.latency_s > healthy.records[0].latency_s

    def test_all_paths_severed_fails_requests(self):
        system = _system(num_edge_nodes=1)
        workload = Workload.single("vgg16")
        schedule = FaultSchedule(
            [LinkDown(0.0, "device-edge"), LinkDown(0.0, "device-cloud")]
        )
        report = system.serve(workload, faults=schedule)
        assert report.num_failed == 1
        assert report.availability == 0.0

    def test_link_recovery_restores_service(self):
        system = _system(num_edge_nodes=1)
        workload = Workload.constant_rate("vgg16", num_requests=4, interval_s=2.0)
        schedule = FaultSchedule(
            [
                LinkDown(0.0, "device-edge"),
                LinkDown(0.0, "device-cloud"),
                LinkUp(3.0, "device-edge"),
                LinkUp(3.0, "device-cloud"),
            ]
        )
        report = system.serve(workload, faults=schedule)
        early = [r for r in report.records if r.arrival_s < 3.0]
        late = [r for r in report.records if r.arrival_s >= 3.0]
        assert all(not r.completed for r in early)
        assert all(r.completed for r in late)


class TestSourceDeviceFailures:
    def test_dead_source_device_fails_its_requests(self):
        system = _system(topology="multi_device")
        workload = Workload.constant_rate(
            "alexnet", num_requests=6, interval_s=1.0, sources=["device-0", "device-1"]
        )
        schedule = FaultSchedule([NodeDown(1.5, "device-1")])
        report = system.serve(workload, faults=schedule)
        for record in report.records:
            arrived_after = record.arrival_s >= 1.5
            from_dead = int(record.request_id.split("-")[1]) % 2 == 1
            if from_dead and arrived_after:
                assert not record.completed
            if not from_dead:
                assert record.completed


class TestDegenerateReports:
    def test_all_failed_report_is_well_formed(self):
        system = _system(num_edge_nodes=1)
        workload = Workload.constant_rate("alexnet", num_requests=3, interval_s=0.5)
        schedule = FaultSchedule([NodeDown(0.0, "device-0")])
        report = system.serve(workload, faults=schedule)
        assert report.num_completed == 0
        assert report.availability == 0.0
        assert report.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.mean_latency_s == 0.0
        assert report.throughput_rps == 0.0
        summary = report.summary()
        assert "availability 0.0%" in summary
        assert "3/3 failed" in summary

    def test_empty_report_percentiles(self):
        report = ServingReport(workload_name="empty")
        assert report.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.availability == 1.0
        assert isinstance(report.summary(), str)

    def test_retried_only_percentiles(self, vgg_workload, edge_outage):
        report = _system().serve(vgg_workload, faults=edge_outage)
        retried = [r.latency_s for r in report.records if r.completed and r.retries > 0]
        pct = report.latency_percentiles(retried_only=True)
        assert retried
        assert pct["p99"] == pytest.approx(max(retried), rel=0.05)

    def test_downtime_weighted_utilisation(self, vgg_workload, edge_outage):
        report = _system().serve(vgg_workload, faults=edge_outage)
        plain = report.node_utilisation()
        weighted = report.node_utilisation(downtime_weighted=True)
        assert weighted["edge-0"] >= plain["edge-0"]
        # nodes that never went down are unchanged
        assert weighted["edge-1"] == plain["edge-1"]


class TestStandaloneSimulatorFailover:
    """The engine retries without a replanner by re-resolving onto survivors."""

    def _requests(self, system, workload):
        reqs = []
        for request in workload:
            graph = system.graph_for(request.model)
            entry = system._plan_for(graph, system.network)
            reqs.append(
                ServingRequest(
                    index=request.index,
                    request_id=request.request_id,
                    graph=graph,
                    plan=entry.placement,
                    profile=entry.profile,
                    condition=system.network,
                    arrival_s=request.arrival_s,
                    vsm_plan=entry.vsm_plan,
                )
            )
        return reqs

    def test_retry_reresolves_to_surviving_edge_nodes(self):
        system = _system()
        workload = Workload.single("vgg16")
        requests = self._requests(system, workload)
        schedule = FaultSchedule([NodeDown(0.05, "edge-0"), NodeUp(60.0, "edge-0")])
        simulator = ServingSimulator(system.cluster, faults=schedule)
        records = simulator.run(requests)
        assert records[0].completed
        assert records[0].retries >= 1
        # the retried attempt ran on the surviving rack only
        post_fault = [
            e for e in records[0].report.events if e.start_s >= 0.05 and e.kind == "compute"
        ]
        assert post_fault
        assert all(e.node != "edge-0" for e in post_fault)

    def test_whole_tier_down_fails_without_replanner(self):
        system = _system(num_edge_nodes=1)
        workload = Workload.single("vgg16")
        requests = self._requests(system, workload)
        schedule = FaultSchedule([NodeDown(0.05, "edge-0")])
        simulator = ServingSimulator(system.cluster, faults=schedule, max_retries=2)
        records = simulator.run(requests)
        assert not records[0].completed
        assert records[0].status == "failed"

    def test_negative_retry_budget_rejected(self):
        cluster = Cluster.build(num_edge_nodes=1)
        with pytest.raises(ValueError):
            ServingSimulator(cluster, max_retries=-1)

    def test_schedule_validated_against_cluster_topology(self):
        system = _system()
        simulator = ServingSimulator(
            system.cluster, faults=FaultSchedule([NodeDown(1.0, "edge-99")])
        )
        with pytest.raises(Exception, match="unknown node"):
            simulator.run([])

    def test_truncated_event_keeps_busy_seconds_consistent(self):
        system = _system()
        workload = Workload.single("vgg16")
        requests = self._requests(system, workload)
        schedule = FaultSchedule([NodeDown(0.05, "edge-0"), NodeUp(60.0, "edge-0")])
        simulator = ServingSimulator(system.cluster, faults=schedule)
        records = simulator.run(requests)
        node = system.cluster.node("edge-0")
        event_busy = sum(
            e.duration_s
            for r in records
            for e in r.report.events
            if e.node == "edge-0" and e.kind == "compute"
        )
        assert node.busy_seconds == pytest.approx(event_busy)


class TestAvailabilityHarness:
    def test_availability_comparison_rows(self):
        from repro.experiments.availability import (
            format_availability_comparison,
            run_availability_comparison,
        )
        from repro.experiments.serving import ServingScenario

        scenario = ServingScenario(models=("alexnet",), num_requests=10, rate_rps=8.0)
        results = run_availability_comparison(
            methods=("hpa_vsm", "cloud_only"),
            mtbfs_s=(None, 2.0),
            scenario=scenario,
            seed=3,
        )
        assert len(results) == 4
        for method, mtbf, report in results:
            assert report is not None
            assert 0.0 <= report.availability <= 1.0
            if mtbf is None:
                assert report.failover_replans == 0
        table = format_availability_comparison(results)
        assert "avail %" in table and "hpa_vsm" in table


class TestFaultBlastRadius:
    """Failures must only disrupt what they physically touch."""

    def test_shared_medium_transfer_between_healthy_nodes_survives(self):
        """A dead edge node must not abort a transfer between two *healthy*
        nodes that merely share its tier-alias wire (the paper's LAN)."""
        system = _system()
        # edge-0 blinks off at arrival (binding the request to edge-1..3 and
        # the LAN transfer to device-0 -> edge-1), recovers immediately, then
        # dies again while that transfer is on the shared wire.
        schedule = FaultSchedule(
            [
                NodeDown(0.0, "edge-0"),
                NodeUp(0.001, "edge-0"),
                NodeDown(0.03, "edge-0"),
            ]
        )
        report = system.serve(Workload.single("vgg16"), faults=schedule)
        record = report.records[0]
        assert record.completed
        assert record.retries == 0  # untouched by a failure it doesn't share
        assert report.failover_replans == 0

    def test_aborted_transfer_releases_unstarted_hop_reservations(self):
        """Store-and-forward books every hop up-front; when a fault kills the
        attempt, reservations whose bytes never reached the wire must be
        released instead of serializing later traffic as phantom transfers."""
        system = _system(topology="device_gateway")
        # the gateway dies while hop 1 (device->gateway) is transmitting,
        # before hop 2 (gateway->edge) starts; the deployment is unservable
        # without its only relay, so the request fails -- and the pre-booked
        # gateway-edge reservation must be unwound.
        schedule = FaultSchedule([NodeDown(0.03, "gateway-0")])
        report = system.serve(Workload.single("vgg16"), faults=schedule)
        assert report.records[0].status == "failed"
        assert report.link_busy_s["gateway-edge"] == pytest.approx(0.0)
        # the hop already on the wire stays consumed
        assert report.link_busy_s["device-gateway"] > 0.0
