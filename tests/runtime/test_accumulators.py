"""Streaming accumulators: exactness at small N, tolerance at large N, and
engine-level determinism of the streaming mode against the record-keeping
engine on the golden workloads."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.d3 import D3Config, D3System
from repro.experiments.reporting import latency_percentiles, percentile
from repro.network.topology import Topology
from repro.runtime.accumulators import (
    DEFAULT_EXACT_THRESHOLD,
    OnlineStats,
    ServingStats,
    StreamingPercentiles,
)
from repro.runtime.workload import Workload

QUANTILES = (50.0, 95.0, 99.0)


# --------------------------------------------------------------------------- #
# OnlineStats
# --------------------------------------------------------------------------- #
class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_batch_mean_min_max(self, values):
        stats = OnlineStats()
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.min == min(values)
        assert stats.max == max(values)
        assert stats.mean == pytest.approx(sum(values) / len(values), rel=1e-12)


# --------------------------------------------------------------------------- #
# StreamingPercentiles
# --------------------------------------------------------------------------- #
class TestStreamingPercentiles:
    @given(st.lists(st.floats(0.0, 1e3), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_exact_below_threshold(self, values):
        """Below the exact threshold the streaming path IS the sorting path:
        every quantile matches `reporting.percentile` bit for bit."""
        streaming = StreamingPercentiles(exact_threshold=DEFAULT_EXACT_THRESHOLD)
        for value in values:
            streaming.add(value)
        assert streaming.is_exact
        for q in QUANTILES:
            assert streaming.percentile(q) == percentile(values, q)
        named = latency_percentiles(values, QUANTILES)
        assert streaming.percentiles(QUANTILES) == named

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_reservoir_tolerance_at_large_n(self, seed):
        """Past the threshold the reservoir estimate stays within a small
        rank tolerance of the exact percentile for a well-behaved stream."""
        import random

        rng = random.Random(seed)
        n = 20_000
        values = [rng.random() * 100.0 for _ in range(n)]
        streaming = StreamingPercentiles(exact_threshold=4096, reservoir_size=4096, seed=0)
        for value in values:
            streaming.add(value)
        assert not streaming.is_exact
        ordered = sorted(values)
        for q in QUANTILES:
            estimate = streaming.percentile(q)
            # Rank-based tolerance: the estimate must sit within +/-2.5
            # rank percentage points of the true order statistic (a classic
            # uniform-reservoir bound at 4096 samples, far below any
            # regression that would matter for a latency report).
            lo = ordered[max(0, int(n * (q - 2.5) / 100.0))]
            hi = ordered[min(n - 1, int(math.ceil(n * min(q + 2.5, 100.0) / 100.0)) - 1)]
            assert lo <= estimate <= hi, (q, lo, estimate, hi)

    def test_empty_stream(self):
        streaming = StreamingPercentiles(exact_threshold=16)
        assert streaming.percentile(50.0) == 0.0
        assert streaming.percentiles(QUANTILES) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_reservoir_bounds_memory(self):
        streaming = StreamingPercentiles(exact_threshold=64, reservoir_size=64, seed=0)
        for index in range(10_000):
            streaming.add(float(index))
        assert len(streaming.sample) == 64


# --------------------------------------------------------------------------- #
# Engine determinism: stream_stats vs the record-keeping engine
# --------------------------------------------------------------------------- #
def _system(**overrides) -> D3System:
    config = dict(
        topology=Topology.three_tier(num_edge_nodes=4, network="wifi"),
        use_regression=False,
        profiler_noise_std=0.0,
    )
    config.update(overrides)
    return D3System(D3Config(**config))


#: The golden-trace workloads (steady/chaos pin vgg16 Poisson streams; the
#: fleet golden is topology-driven) reduced to their serving essentials —
#: what matters here is that BOTH engines consume the same stream.
GOLDEN_WORKLOADS = (
    ("steady", "vgg16", dict(num_requests=40, rate_rps=2.0, seed=7)),
    ("burst", "alexnet", dict(num_requests=60, rate_rps=20.0, seed=3)),
)


class TestStreamingEngineDeterminism:
    @pytest.mark.parametrize("name,model,spec", GOLDEN_WORKLOADS, ids=lambda v: str(v))
    def test_summaries_identical_on_golden_workloads(self, name, model, spec):
        """The streaming engine must report the exact aggregate numbers the
        record-keeping engine computes from its per-request records."""
        workload = Workload.poisson(model, **spec)
        full = _system().serve(workload)
        stream = _system().serve(workload, stream_stats=True)
        assert stream.num_requests == full.num_requests
        assert stream.num_completed == full.num_completed
        assert stream.num_failed == full.num_failed
        assert stream.num_rejected == full.num_rejected
        assert stream.mean_latency_s == full.mean_latency_s
        assert stream.latency_percentiles() == full.latency_percentiles()
        assert stream.throughput_rps == full.throughput_rps
        assert stream.bytes_to_cloud == full.bytes_to_cloud
        assert stream.availability == full.availability

    def test_streaming_matches_under_schedulers(self):
        workload = Workload.poisson(
            "alexnet", num_requests=50, rate_rps=20.0, seed=0, slo_ms=400.0
        )
        for scheduler in ("fifo", "batch", "edf"):
            full = _system().serve(workload, scheduler=scheduler)
            stream = _system().serve(workload, scheduler=scheduler, stream_stats=True)
            assert stream.num_completed == full.num_completed, scheduler
            assert stream.num_rejected == full.num_rejected, scheduler
            assert stream.mean_latency_s == full.mean_latency_s, scheduler
            assert stream.latency_percentiles() == full.latency_percentiles(), scheduler
            assert stream.goodput_rps == full.goodput_rps, scheduler
            assert stream.slo_attainment == full.slo_attainment, scheduler

    def test_streaming_report_has_no_records(self):
        workload = Workload.constant_rate("alexnet", 10, interval_s=0.05)
        report = _system().serve(workload, stream_stats=True)
        assert report.records == []
        assert report.stats is not None
        assert report.stats.num_requests == 10


# --------------------------------------------------------------------------- #
# ServingStats unit behaviour
# --------------------------------------------------------------------------- #
class TestServingStats:
    def test_rejected_requests_skip_latency(self):
        stats = ServingStats()
        stats.add(
            arrival_s=0.0,
            completion_s=0.0,
            status="rejected",
            retries=0,
            slo_ms=100.0,
            priority=0,
            bytes_to_cloud=0,
            ideal_latency_s=None,
        )
        assert stats.num_rejected == 1
        assert stats.latency.count == 0

    def test_slo_attainment_counts(self):
        stats = ServingStats()
        for latency, slo in ((0.05, 100.0), (0.2, 100.0)):
            stats.add(
                arrival_s=0.0,
                completion_s=latency,
                status="completed",
                retries=0,
                slo_ms=slo,
                priority=0,
                bytes_to_cloud=0,
                ideal_latency_s=None,
            )
        assert stats.num_completed == 2
        assert stats.num_met_slo == 1
