"""Tests for the workload abstraction (arrival processes, determinism)."""

import pytest

from repro.runtime.workload import Request, Workload


class TestRequest:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(index=0, model="vgg16", arrival_s=-1.0)

    def test_request_id(self):
        assert Request(index=3, model="vgg16", arrival_s=0.0).request_id == "req-3"


class TestSingle:
    def test_degenerate_workload(self):
        workload = Workload.single("vgg16")
        assert len(workload) == 1
        assert workload.requests[0].arrival_s == 0.0
        assert workload.models == ["vgg16"]

    def test_graph_instance_carried(self, alexnet):
        workload = Workload.single(alexnet)
        assert workload.requests[0].graph is alexnet
        assert workload.requests[0].model == alexnet.name


class TestConstantRate:
    def test_arrival_spacing(self):
        workload = Workload.constant_rate("vgg16", num_requests=5, interval_s=0.5)
        arrivals = [r.arrival_s for r in workload]
        assert arrivals == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert workload.mean_rate_rps == pytest.approx(2.0)

    def test_round_robin_over_models(self):
        workload = Workload.constant_rate(["a", "b"], num_requests=4, interval_s=1.0)
        assert [r.model for r in workload] == ["a", "b", "a", "b"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Workload.constant_rate("vgg16", num_requests=0, interval_s=1.0)
        with pytest.raises(ValueError):
            Workload.constant_rate("vgg16", num_requests=2, interval_s=-1.0)
        with pytest.raises(ValueError):
            Workload.constant_rate([], num_requests=2, interval_s=1.0)


class TestPoisson:
    def test_seeded_reproducibility(self):
        first = Workload.poisson("vgg16", num_requests=20, rate_rps=3.0, seed=42)
        second = Workload.poisson("vgg16", num_requests=20, rate_rps=3.0, seed=42)
        assert [r.arrival_s for r in first] == [r.arrival_s for r in second]
        assert [r.model for r in first] == [r.model for r in second]

    def test_different_seeds_differ(self):
        first = Workload.poisson("vgg16", num_requests=20, rate_rps=3.0, seed=0)
        second = Workload.poisson("vgg16", num_requests=20, rate_rps=3.0, seed=1)
        assert [r.arrival_s for r in first] != [r.arrival_s for r in second]

    def test_arrivals_sorted_and_rate_plausible(self):
        workload = Workload.poisson("vgg16", num_requests=200, rate_rps=4.0, seed=0)
        arrivals = [r.arrival_s for r in workload]
        assert arrivals == sorted(arrivals)
        # The empirical rate of 200 samples should be within 30% of nominal.
        assert workload.mean_rate_rps == pytest.approx(4.0, rel=0.3)

    def test_model_mix_with_weights(self):
        workload = Workload.poisson(
            ["a", "b"], num_requests=300, rate_rps=1.0, seed=0, weights=[9, 1]
        )
        share_a = sum(1 for r in workload if r.model == "a") / len(workload)
        assert share_a > 0.75

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Workload.poisson("vgg16", num_requests=10, rate_rps=0.0)
        with pytest.raises(ValueError):
            Workload.poisson(["a", "b"], num_requests=10, rate_rps=1.0, weights=[1.0])


class TestDiurnal:
    def test_seeded_reproducibility(self):
        first = Workload.diurnal("vgg16", duration_s=100.0, peak_rps=8.0, seed=42)
        second = Workload.diurnal("vgg16", duration_s=100.0, peak_rps=8.0, seed=42)
        assert [r.arrival_s for r in first] == [r.arrival_s for r in second]
        assert [r.model for r in first] == [r.model for r in second]
        third = Workload.diurnal("vgg16", duration_s=100.0, peak_rps=8.0, seed=43)
        assert [r.arrival_s for r in first] != [r.arrival_s for r in third]

    def test_arrivals_sorted_and_within_span(self):
        workload = Workload.diurnal(
            "alexnet", duration_s=50.0, peak_rps=10.0, seed=1, start_s=5.0
        )
        arrivals = [r.arrival_s for r in workload]
        assert arrivals == sorted(arrivals)
        assert all(5.0 <= t < 55.0 for t in arrivals)

    def test_curve_peaks_midway(self):
        """A raised-cosine cycle concentrates arrivals around the middle."""
        workload = Workload.diurnal(
            "alexnet", duration_s=300.0, peak_rps=12.0, trough_rps=1.0, seed=0
        )
        arrivals = [r.arrival_s for r in workload]
        middle = sum(1 for t in arrivals if 100.0 <= t < 200.0)
        first = sum(1 for t in arrivals if t < 100.0)
        # The middle third of the cycle holds the peak, the first third the
        # climb out of the trough: the raised cosine puts ~2.6x more mass in
        # the middle. Assert with slack for sampling noise.
        assert middle > 1.8 * first

    def test_default_trough_is_a_tenth_of_peak(self):
        workload = Workload.diurnal("alexnet", duration_s=30.0, peak_rps=20.0, seed=3)
        assert workload.name == "diurnal:alexnet@2-20rps"

    def test_slo_and_model_mix_carried(self):
        workload = Workload.diurnal(
            ["a", "b"],
            duration_s=200.0,
            peak_rps=6.0,
            seed=0,
            weights=[9, 1],
            slo_ms=250.0,
        )
        assert all(r.slo_ms == 250.0 for r in workload)
        share_a = sum(1 for r in workload if r.model == "a") / len(workload)
        assert share_a > 0.75

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Workload.diurnal("a", duration_s=0.0, peak_rps=5.0)
        with pytest.raises(ValueError):
            Workload.diurnal("a", duration_s=10.0, peak_rps=0.0)
        with pytest.raises(ValueError):
            Workload.diurnal("a", duration_s=10.0, peak_rps=5.0, trough_rps=6.0)
        with pytest.raises(ValueError):
            Workload.diurnal("a", duration_s=10.0, peak_rps=5.0, period_s=0.0)
        with pytest.raises(ValueError):
            Workload.diurnal(["a", "b"], duration_s=10.0, peak_rps=5.0, weights=[1.0])


class TestMerge:
    def test_merge_reindexes_by_arrival(self):
        early = Workload.constant_rate("a", num_requests=2, interval_s=2.0)
        late = Workload.constant_rate("b", num_requests=2, interval_s=2.0, start_s=1.0)
        merged = Workload.merge(early, late)
        assert [r.model for r in merged] == ["a", "b", "a", "b"]
        assert [r.index for r in merged] == [0, 1, 2, 3]

    def test_unsorted_requests_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                requests=[
                    Request(index=0, model="a", arrival_s=1.0),
                    Request(index=1, model="a", arrival_s=0.5),
                ]
            )


class TestSourcePinning:
    def test_default_source_is_none(self):
        workload = Workload.constant_rate("a", num_requests=3, interval_s=1.0)
        assert all(r.source is None for r in workload)

    def test_constant_rate_round_robins_sources(self):
        workload = Workload.constant_rate(
            "a", num_requests=5, interval_s=1.0, sources=["d0", "d1"]
        )
        assert [r.source for r in workload] == ["d0", "d1", "d0", "d1", "d0"]

    def test_poisson_round_robins_sources(self):
        workload = Workload.poisson(
            ["a", "b"], num_requests=6, rate_rps=2.0, seed=1, sources=("d0", "d1", "d2")
        )
        assert [r.source for r in workload] == ["d0", "d1", "d2", "d0", "d1", "d2"]

    def test_single_source_string(self):
        workload = Workload.poisson("a", num_requests=2, rate_rps=1.0, sources="d1")
        assert [r.source for r in workload] == ["d1", "d1"]

    def test_single_request_source(self):
        assert Workload.single("a", source="d3").requests[0].source == "d3"

    def test_merge_preserves_sources(self):
        fleet_a = Workload.constant_rate("a", 2, interval_s=2.0, sources=["d0"])
        fleet_b = Workload.constant_rate("b", 2, interval_s=2.0, start_s=1.0, sources=["d1"])
        merged = Workload.merge(fleet_a, fleet_b)
        assert [r.source for r in merged] == ["d0", "d1", "d0", "d1"]
