"""Unit tests for the model-artifact / codec / weight-cache subsystem."""

import math

import pytest

from repro.models.zoo import build_model
from repro.runtime.artifacts import (
    BYTES_PER_WEIGHT,
    CODECS,
    GIB,
    ArtifactError,
    CapacityError,
    CompressionCodec,
    MemoryModel,
    ModelArtifact,
    UnknownCodecError,
    WeightCache,
    get_codec,
    register_codec,
    resolve_memory,
)


# --------------------------------------------------------------------- #
# ModelArtifact
# --------------------------------------------------------------------- #
class TestModelArtifact:
    def test_from_graph_matches_graph_totals(self):
        graph = build_model("alexnet")
        artifact = ModelArtifact.from_graph(graph)
        assert artifact.model == "alexnet"
        assert artifact.total_weight_bytes == graph.total_weights() * BYTES_PER_WEIGHT
        assert artifact.peak_activation_bytes == max(
            v.output_bytes for v in graph.vertices
        )

    def test_stage_queries(self):
        artifact = ModelArtifact(
            model="toy",
            vertex_weight_bytes={0: 0, 1: 100, 2: 300},
            vertex_activation_bytes={0: 10, 1: 50, 2: 20},
        )
        assert artifact.weight_bytes_for([1, 2]) == 400
        assert artifact.activation_bytes_for([1, 2]) == 50
        assert artifact.resident_bytes_for([1, 2]) == 450
        # Unknown indices count as zero rather than raising.
        assert artifact.weight_bytes_for([99]) == 0
        assert artifact.activation_bytes_for([]) == 0

    def test_model_zoo_footprints_are_plausible(self):
        # The zoo's weight counts (Table II of the paper): VGG-16 is by far
        # the heaviest, ResNet-18 the lightest of the five.
        sizes = {
            name: ModelArtifact.from_graph(build_model(name)).total_weight_bytes
            for name in ("vgg16", "alexnet", "resnet18")
        }
        assert sizes["vgg16"] > sizes["alexnet"] > sizes["resnet18"]
        assert sizes["vgg16"] > 500e6  # ~553 MB of float32


# --------------------------------------------------------------------- #
# Codecs
# --------------------------------------------------------------------- #
class TestCodecs:
    def test_registry_contains_the_three_builtins(self):
        assert {"none", "symmetric", "zxc"} <= set(CODECS)

    def test_none_codec_is_free_and_ratio_one(self):
        codec = get_codec("none")
        assert codec.compressed_bytes(1000) == 1000
        assert codec.compress_seconds(10**9) == 0.0
        assert codec.decompress_seconds(10**9) == 0.0

    def test_zxc_beats_symmetric_on_decompress_at_equal_ratio(self):
        symmetric, zxc = get_codec("symmetric"), get_codec("zxc")
        raw = 500_000_000
        assert zxc.ratio == symmetric.ratio
        assert zxc.compressed_bytes(raw) == symmetric.compressed_bytes(raw)
        assert zxc.decompress_seconds(raw) < symmetric.decompress_seconds(raw)
        # ...paid for by the slow write-once compression.
        assert zxc.compress_seconds(raw) > symmetric.compress_seconds(raw)

    def test_throughput_math(self):
        codec = CompressionCodec("t", ratio=4.0, compress_mb_s=100.0, decompress_mb_s=200.0)
        assert codec.compressed_bytes(1000) == 250
        assert math.isclose(codec.compress_seconds(100e6), 1.0)
        assert math.isclose(codec.decompress_seconds(100e6), 0.5)

    def test_invalid_codecs_are_rejected(self):
        with pytest.raises(ArtifactError):
            CompressionCodec("bad", ratio=0.5, compress_mb_s=1.0, decompress_mb_s=1.0)
        with pytest.raises(ArtifactError):
            CompressionCodec("bad", ratio=2.0, compress_mb_s=0.0, decompress_mb_s=1.0)
        with pytest.raises(UnknownCodecError):
            get_codec("gzip")

    def test_register_codec_round_trips(self):
        codec = CompressionCodec("unit-test", 3.0, 10.0, 30.0)
        try:
            assert register_codec(codec) is codec
            assert get_codec("unit-test") is codec
        finally:
            CODECS.pop("unit-test", None)


# --------------------------------------------------------------------- #
# WeightCache
# --------------------------------------------------------------------- #
class TestWeightCache:
    def test_admit_and_hit_accounting(self):
        cache = WeightCache("edge-0", capacity_bytes=1000)
        assert cache.admit("a", 400) == []
        assert cache.resident("a")
        assert cache.resident_bytes == 400
        cache.record_hit("a")
        cache.record_miss()
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.peak_resident_bytes == 400

    def test_lru_evicts_least_recently_used(self):
        cache = WeightCache("edge-0", capacity_bytes=1000, eviction="lru")
        cache.admit("a", 400)
        cache.admit("b", 400)
        cache.record_hit("a")  # b is now the LRU entry
        assert cache.admit("c", 400) == ["b"]
        assert cache.resident_models() == ["a", "c"]
        assert cache.evictions == 1

    def test_priority_evicts_fewest_hits(self):
        cache = WeightCache("edge-0", capacity_bytes=1000, eviction="priority")
        cache.admit("a", 400)
        cache.admit("b", 400)
        cache.record_hit("a")
        cache.record_hit("a")
        cache.record_hit("b")
        cache.record_hit("b")
        cache.record_hit("a")  # a: 3 hits, b: 2 hits but more recent
        assert cache.admit("c", 400) == ["b"]

    def test_pinned_entries_raise_capacity_error(self):
        cache = WeightCache("edge-0", capacity_bytes=1000)
        cache.admit("a", 600)
        cache.pin("a")
        with pytest.raises(CapacityError):
            cache.admit("b", 600)
        # The pinned entry is untouched by the failed admission.
        assert cache.resident("a") and cache.resident_bytes == 600
        cache.unpin("a")
        assert cache.admit("b", 600) == ["a"]

    def test_readmission_resizes_in_place(self):
        cache = WeightCache("edge-0", capacity_bytes=1000)
        cache.admit("a", 400)
        cache.admit("a", 700)
        assert cache.resident_bytes == 700
        assert cache.resident_models() == ["a"]

    def test_readmission_rollback_on_capacity_error(self):
        cache = WeightCache("edge-0", capacity_bytes=1000)
        cache.admit("a", 400)
        cache.pin("a")  # no victims available
        with pytest.raises(CapacityError):
            cache.admit("a", 2000)
        assert cache.resident("a") and cache.resident_bytes == 400

    def test_pin_refcounting(self):
        cache = WeightCache("edge-0", capacity_bytes=1000)
        cache.pin("a")
        cache.pin("a")
        assert cache.pin_count("a") == 2
        cache.unpin("a")
        assert cache.pin_count("a") == 1
        cache.unpin("a")
        cache.unpin("a")  # over-release is a no-op
        assert cache.pin_count("a") == 0

    def test_oversized_entry_raises(self):
        cache = WeightCache("edge-0", capacity_bytes=100)
        with pytest.raises(CapacityError):
            cache.admit("a", 200)

    def test_invalid_construction(self):
        with pytest.raises(ArtifactError):
            WeightCache("n", capacity_bytes=10, eviction="fifo")
        with pytest.raises(ArtifactError):
            WeightCache("n", capacity_bytes=-1)
        cache = WeightCache("n", capacity_bytes=10)
        with pytest.raises(ArtifactError):
            cache.admit("a", -5)


# --------------------------------------------------------------------- #
# MemoryModel / resolve_memory
# --------------------------------------------------------------------- #
class TestMemoryModel:
    def test_validation(self):
        with pytest.raises(UnknownCodecError):
            MemoryModel(codec="gzip")
        with pytest.raises(ArtifactError):
            MemoryModel(eviction="fifo")
        with pytest.raises(ArtifactError):
            MemoryModel(budget_gb=0.0)

    def test_capacity_caps_device_and_edge_but_not_cloud(self):
        from repro.core.d3 import D3Config, D3System

        system = D3System(D3Config(use_regression=False, profiler_noise_std=0.0))
        memory = MemoryModel(budget_gb=0.5)
        for node in system.cluster.all_nodes:
            cap = memory.capacity_bytes(node)
            hardware = int(node.hardware.memory_gb * GIB)
            if node.tier.value == "cloud":
                assert cap == hardware
            else:
                assert cap == min(hardware, int(0.5 * GIB))

    def test_artifact_memoization(self):
        graph = build_model("resnet18")
        memory = MemoryModel()
        assert memory.artifact_for(graph) is memory.artifact_for(graph)

    def test_key_and_with_codec(self):
        memory = MemoryModel(budget_gb=1.0, codec="zxc", eviction="priority")
        assert memory.key() == (1.0, "zxc", "priority")
        assert memory.with_codec("symmetric").key() == (1.0, "symmetric", "priority")

    def test_resolve_memory_inert(self):
        assert resolve_memory() is None
        assert resolve_memory(None, None, None) is None

    def test_resolve_memory_from_float_and_overrides(self):
        memory = resolve_memory(2.0, codec="zxc", eviction="priority")
        assert memory.key() == (2.0, "zxc", "priority")
        base = MemoryModel(budget_gb=1.0)
        overridden = resolve_memory(base, codec="symmetric")
        assert overridden.key() == (1.0, "symmetric", "lru")
        assert resolve_memory(base) is base

    def test_resolve_memory_codec_alone_activates(self):
        memory = resolve_memory(codec="zxc")
        assert memory is not None and memory.budget_gb is None
