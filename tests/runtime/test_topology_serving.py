"""Integration tests: topology-driven clusters under the serving engine."""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.network.conditions import BandwidthTrace
from repro.network.topology import LinkSpec, NodeSpec, Topology, get_topology
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, RASPBERRY_PI_4
from repro.runtime.cluster import Cluster
from repro.runtime.workload import Workload


def _system(topology=None, **overrides):
    config = dict(use_regression=False, profiler_noise_std=0.0)
    config.update(overrides)
    return D3System(D3Config(topology=topology, **config))


class TestCanonicalEquivalence:
    def test_three_tier_topology_is_bit_identical_to_shim(self):
        """The declarative canonical topology reproduces the fixed-shape API."""
        shim = _system(num_edge_nodes=4, network="wifi")
        topo = _system(Topology.three_tier(num_edge_nodes=4, network="wifi"))
        graph_a = shim.graph_for("alexnet")
        graph_b = topo.graph_for("alexnet")
        result_a = shim.run(graph_a)
        result_b = topo.run(graph_b)
        assert result_a.end_to_end_latency_s == result_b.end_to_end_latency_s
        assert result_a.bytes_to_cloud == result_b.bytes_to_cloud
        assert result_a.placement.assignments == result_b.placement.assignments

    def test_three_tier_serving_is_bit_identical_to_shim(self):
        workload = Workload.poisson("alexnet", num_requests=12, rate_rps=6.0, seed=3)
        report_a = _system(num_edge_nodes=2).serve(workload)
        report_b = _system(Topology.three_tier(num_edge_nodes=2, network="wifi")).serve(
            workload
        )
        assert report_a.latencies_s == report_b.latencies_s
        assert report_a.link_busy_s == report_b.link_busy_s


class TestMultiDeviceFleet:
    def test_sources_spread_over_per_device_links(self):
        system = _system("multi_device")
        sources = [node.name for node in system.cluster.devices]
        assert len(sources) == 3
        workload = Workload.constant_rate(
            "alexnet", num_requests=6, interval_s=0.3, sources=sources
        )
        report = system.serve(workload)
        assert report.num_requests == 6
        # Every device's own LAN wire carried traffic (keys are link ids).
        for i in range(3):
            assert report.link_busy_s[f"device-{i}-lan"] > 0.0

    def test_unpinned_requests_use_primary_device_only(self):
        system = _system("multi_device")
        report = system.serve(Workload.constant_rate("alexnet", 4, interval_s=0.3))
        busy = {k: v for k, v in report.link_busy_s.items() if v > 0}
        assert any("device-0" in key for key in busy)
        assert not any("device-1" in key or "device-2" in key for key in busy)

    def test_unknown_source_rejected(self):
        system = _system("multi_device")
        with pytest.raises(ValueError, match="not a device node"):
            system.serve(Workload.single("alexnet", source="device-99"))

    def test_non_device_source_rejected(self):
        system = _system("multi_device")
        with pytest.raises(ValueError, match="not a device"):
            system.serve(Workload.single("alexnet", source="edge-0"))


class TestHeterogeneousEdge:
    def test_slower_rack_is_no_faster_than_homogeneous(self):
        homogeneous = _system(
            get_topology("hetero_edge", speed_factors=(1.0, 1.0, 1.0, 1.0))
        )
        hetero = _system(
            get_topology("hetero_edge", speed_factors=(1.0, 0.25, 0.25, 0.25))
        )
        fast = homogeneous.run(homogeneous.graph_for("resnet18"))
        slow = hetero.run(hetero.graph_for("resnet18"))
        assert slow.end_to_end_latency_s >= fast.end_to_end_latency_s

    def test_speed_factors_realized_on_nodes(self):
        system = _system(get_topology("hetero_edge", speed_factors=(1.0, 0.5)))
        factors = [node.speed_factor for node in system.cluster.edge_nodes]
        assert factors == [1.0, pytest.approx(0.5)]


class TestGatewayChain:
    def test_transfers_cross_every_hop(self):
        system = _system("device_gateway")
        result = system.run(system.graph_for("alexnet"), method="cloud_only")
        report = system.serve(Workload.single("alexnet"), method="cloud_only")
        # The raw input crosses device->gateway, gateway->edge and edge->cloud.
        busy = {k: v for k, v in report.link_busy_s.items() if v > 0}
        assert set(busy) == {"device-gateway", "gateway-edge", "edge-cloud"}
        assert result.bytes_to_cloud > 0

    def test_transfer_duration_is_the_sum_of_hop_times(self):
        """Store-and-forward: the recorded transfer spans all three wires."""
        system = _system("device_gateway")
        result = system.run(system.graph_for("alexnet"), method="cloud_only")
        transfer = result.report.transfers[0]
        topology = system.topology
        expected = sum(
            transfer.payload_bytes
            / (topology.hop_mbps(topology.links[hop]) * 1e6 / 8.0)
            for hop in topology.route("device-0", "cloud-0")
        )
        assert transfer.duration_s == pytest.approx(expected, rel=1e-9)


class TestTracedLinks:
    def test_link_trace_prices_transfers_at_their_start_time(self):
        """A traced wire charges each hop the rate in effect when it starts."""
        slowdown = BandwidthTrace(samples=[(0.0, 80.0), (1.0, 8.0)])
        topology = Topology(
            "traced",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", slowdown),
                LinkSpec("bb", "e0", "c0", 30.0),
                LinkSpec("up", "d0", "c0", 18.0),
            ],
        )
        system = _system(topology, enable_vsm=False)
        early = system.serve(Workload.single("alexnet", at_s=0.0), method="edge_only")
        late = system.serve(Workload.single("alexnet", at_s=2.0), method="edge_only")
        assert late.latencies_s[0] > early.latencies_s[0] * 2


class TestClusterFromTopology:
    def test_with_network_preserves_topology(self):
        cluster = Cluster.from_topology(get_topology("multi_device", num_devices=2))
        clone = cluster.with_network(cluster.network.scaled_backbone(0.5))
        assert len(clone.devices) == 2
        assert clone.topology.fingerprint() == cluster.topology.fingerprint()

    def test_node_lookup(self):
        cluster = Cluster.from_topology(get_topology("multi_device", num_devices=2))
        assert cluster.node("device-1").tier.value == "device"
        with pytest.raises(KeyError):
            cluster.node("gateway-0")

    def test_plan_cache_key_separates_topologies(self):
        """Identical config/network/model but a different shape never shares plans."""
        canonical = _system(num_edge_nodes=4)
        hetero = _system(get_topology("hetero_edge", speed_factors=(1.0, 1.0, 0.5, 0.5)))
        entry_a = canonical._plan_for(canonical.graph_for("alexnet"), canonical.network)
        entry_b = hetero._plan_for(hetero.graph_for("alexnet"), hetero.network)
        assert entry_a.key != entry_b.key
        assert entry_a.key.topology != entry_b.key.topology
        # The other system's cache has no entry under the foreign key.
        assert hetero.plan_cache.get(entry_a.key) is None


class TestJsonNetworkPrecedence:
    def test_document_network_wins_over_config_default(self, tmp_path):
        """A JSON topology declaring 4g must not be silently re-priced at wifi."""
        import json

        document = {
            "name": "site",
            "network": "4g",
            "nodes": [
                {"name": "d0", "tier": "device", "hardware": "raspberry_pi_4"},
                {"name": "e0", "tier": "edge", "hardware": "edge_desktop"},
                {"name": "c0", "tier": "cloud", "hardware": "cloud_server"},
            ],
            "links": [
                {"name": "lan", "between": ["d0", "e0"]},
                {"name": "bb", "between": ["e0", "c0"]},
                {"name": "up", "between": ["d0", "c0"]},
            ],
        }
        path = tmp_path / "site.json"
        path.write_text(json.dumps(document))
        system = _system(str(path))  # D3Config's network default is "wifi"
        assert system.network.name == "4g"
        assert system.network.edge_cloud_mbps == pytest.approx(13.79)

    def test_fallback_to_passed_network_when_document_is_silent(self, tmp_path):
        import json

        from repro.network.topology import load_topology

        document = {
            "name": "bare",
            "nodes": [
                {"name": "d0", "tier": "device", "hardware": "raspberry_pi_4"},
                {"name": "e0", "tier": "edge", "hardware": "edge_desktop"},
                {"name": "c0", "tier": "cloud", "hardware": "cloud_server"},
            ],
            "links": [
                {"name": "lan", "between": ["d0", "e0"]},
                {"name": "bb", "between": ["e0", "c0"]},
                {"name": "up", "between": ["d0", "c0"]},
            ],
        }
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(document))
        topology = load_topology(str(path), network="5g")
        assert topology.base_network.name == "5g"


class TestTracedLinkBacklogPricing:
    def test_queued_transfer_pays_the_rate_at_its_start_time(self):
        """A hop delayed behind a backlog is priced when the wire frees."""
        from repro.network.link import SharedLink

        trace = BandwidthTrace(samples=[(0.0, 80.0), (1.0, 8.0)])
        topology = Topology(
            "backlogged",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", trace),
                LinkSpec("bb", "e0", "c0", 30.0),
                LinkSpec("up", "d0", "c0", 18.0),
            ],
        )
        cluster = Cluster.from_topology(topology)
        link = cluster.shared_links["lan"]
        # Occupy the wire until t=2.0: a transfer requested at t=0.5 starts at
        # t=2.0, when the trace has already dropped to 8 Mbps.
        link.reserve(0.0, 2.0)
        payload = 1_000_000  # 1 MB: 0.1 s at 80 Mbps, 1.0 s at 8 Mbps
        expected = cluster.hop_seconds(link, payload, cluster.network, 2.0)
        assert expected == pytest.approx(1.0)
        # The engine's pricing rule: rate sampled at max(ready, available_at).
        starts_at = max(0.5, link.available_at)
        duration = cluster.hop_seconds(link, payload, cluster.network, starts_at)
        assert duration == pytest.approx(1.0)  # not 0.1 s


class TestThreeTierPresetShim:
    def test_preset_name_honours_num_edge_nodes(self):
        """--topology three_tier must describe the same testbed as the default."""
        named = D3Config(topology="three_tier", num_edge_nodes=4).resolve_topology()
        default = D3Config(num_edge_nodes=4).resolve_topology()
        assert named.fingerprint() == default.fingerprint()
        assert len(named.nodes_of_tier("edge")) == 4


class TestTracedTopologyAdaptation:
    def _drifting_topology(self):
        """LAN collapses 84.95 -> 12 Mbps at t=5s (well beyond the band)."""
        return Topology(
            "degrading-lan",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", BandwidthTrace(samples=[(0.0, 84.95), (5.0, 12.0)])),
                LinkSpec("bb", "e0", "c0", 31.53),
                LinkSpec("up", "d0", "c0", 18.75),
            ],
        )

    def test_serve_repartitions_when_a_traced_link_drifts(self):
        """No explicit trace= needed: the topology's own links drive adaptation."""
        system = _system(self._drifting_topology())
        workload = Workload.constant_rate("alexnet", num_requests=10, interval_s=1.0)
        report = system.serve(workload)
        assert report.cache_misses == 1
        assert report.repartitions >= 1
        assert system.plan_cache.invalidations >= 1

    def test_stable_traced_topology_stays_cached(self):
        """In-band wobble on a traced link is a cache hit, not a repartition."""
        wobble = BandwidthTrace(samples=[(0.0, 84.95), (5.0, 80.0)])
        topology = Topology(
            "stable-lan",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", wobble),
                LinkSpec("bb", "e0", "c0", 31.53),
                LinkSpec("up", "d0", "c0", 18.75),
            ],
        )
        system = _system(topology)
        report = system.serve(Workload.constant_rate("alexnet", 8, interval_s=1.0))
        assert report.cache_misses == 1
        assert report.repartitions == 0
        assert report.cache_hits == 7


class TestTopologyFingerprintGuard:
    def test_executor_rejects_plan_from_another_topology(self, alexnet, alexnet_profile):
        from repro.core.strategy import ClusterSpec, get_strategy
        from repro.runtime.executor import DistributedExecutor

        hetero = Cluster.from_topology(get_topology("hetero_edge"))
        canonical = Cluster.build(network="wifi", num_edge_nodes=4)
        plan = get_strategy("hpa_vsm").plan(
            alexnet,
            alexnet_profile,
            hetero.network,
            ClusterSpec.from_cluster(hetero),
        )
        with pytest.raises(ValueError, match="different topology"):
            DistributedExecutor.from_partition_plan(plan, alexnet_profile, canonical)
        # On its own cluster the stamped plan runs fine.
        report = DistributedExecutor.from_partition_plan(
            plan, alexnet_profile, hetero
        ).execute()
        assert report.end_to_end_latency_s > 0

    def test_unstamped_plans_run_anywhere(self, alexnet, alexnet_profile):
        from repro.core.strategy import get_strategy
        from repro.runtime.executor import DistributedExecutor

        cluster = Cluster.build(network="wifi", num_edge_nodes=2)
        plan = get_strategy("cloud_only").plan(alexnet, alexnet_profile, cluster.network)
        report = DistributedExecutor.from_partition_plan(
            plan, alexnet_profile, cluster
        ).execute()
        assert report.end_to_end_latency_s > 0


class TestOffPrimaryDrift:
    def _fleet_with_traced_second_uplink(self):
        """device-1's own LAN collapses 80 -> 8 Mbps at t=2s; device-0's wires
        (the primary planning routes) never move."""
        return Topology(
            "fleet-traced",
            nodes=[
                NodeSpec("device-0", "device", RASPBERRY_PI_4),
                NodeSpec("device-1", "device", RASPBERRY_PI_4),
                NodeSpec("edge-0", "edge", EDGE_DESKTOP),
                NodeSpec("cloud-0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("d0-lan", "device-0", "edge-0", 80.0),
                LinkSpec("d0-cloud", "device-0", "cloud-0", 18.75),
                LinkSpec(
                    "d1-lan",
                    "device-1",
                    "edge-0",
                    BandwidthTrace(samples=[(0.0, 80.0), (2.0, 8.0)]),
                ),
                LinkSpec("d1-cloud", "device-1", "cloud-0", 18.75),
                LinkSpec("bb", "edge-0", "cloud-0", 31.53),
            ],
        )

    def test_drift_off_the_primary_routes_still_adapts(self):
        """An exact plan-key hit must re-validate the per-link band: device-1's
        wire collapses without moving the primary tier-pair rates."""
        system = _system(self._fleet_with_traced_second_uplink())
        workload = Workload.constant_rate(
            "alexnet", num_requests=6, interval_s=1.0, sources=["device-0"]
        )
        report = system.serve(workload)
        # Primary-only stream: its wires are static, nothing should adapt...
        assert report.repartitions + report.cache_misses >= 1
        invalidations_before = system.plan_cache.invalidations
        # ...but a stream that crosses the collapsing wire must.
        fleet = Workload.constant_rate(
            "alexnet", num_requests=6, interval_s=1.0, sources=["device-1"]
        )
        fleet_report = system.serve(fleet)
        assert fleet_report.repartitions >= 1
        assert system.plan_cache.invalidations > invalidations_before


class TestIdealLatencyOnTracedTopologies:
    def test_idle_late_request_has_near_zero_queueing_delay(self):
        """The ideal baseline freezes traced wires at the arrival's rates, so
        an uncontended request arriving after a collapse is not charged its
        whole slow transfer as 'queueing'."""
        topology = Topology(
            "collapsing-lan",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec(
                    "lan", "d0", "e0", BandwidthTrace(samples=[(0.0, 84.95), (5.0, 2.0)])
                ),
                LinkSpec("bb", "e0", "c0", 31.53),
                LinkSpec("up", "d0", "c0", 18.75),
            ],
        )
        system = _system(topology, enable_vsm=False)
        report = system.serve(Workload.single("alexnet", at_s=6.0), method="edge_only")
        delay = report.records[0].queueing_delay_s
        assert delay is not None
        assert abs(delay) < 1e-6  # idle cluster: latency == the (slow) ideal


class TestPerSourcePlanning:
    def test_fleet_member_is_planned_against_its_own_uplink(self):
        """A device on a crippled uplink must not inherit the primary's plan."""
        topology = get_topology("multi_device", num_devices=2, device_mbps=(84.95, 0.5))
        system = _system(topology, enable_vsm=False)
        fast = system.serve(Workload.single("alexnet", source="device-0"))
        slow = system.serve(Workload.single("alexnet", source="device-1"))
        # Distinct planning conditions -> a fresh plan per source (the second
        # arrives through the drift path: an adaptation, not a shared hit).
        assert fast.plans_computed == 1 and slow.plans_computed == 1
        assert slow.cache_hits == 0
        # The slow device's plan keeps more work local than the fast one's
        # offload, and its idle latency reflects its own 0.5 Mbps wire.
        assert slow.latencies_s[0] != fast.latencies_s[0]
        delay = slow.records[0].queueing_delay_s
        assert delay is not None and abs(delay) < 1e-6
