"""Property-based invariants of the serving engine under fault injection.

Hypothesis drives randomized workloads and fault schedules through the full
``D3System.serve`` stack and asserts the invariants the discrete-event engine
must uphold no matter what dies when:

* every request terminates exactly once — completed xor failed;
* the per-node timeline is monotone: events are well-formed and no two
  compute events overlap on one node;
* a completed, never-retried request's latency is bounded below by its plan's
  idle critical path (the plan-cache ideal latency);
* no compute event overlaps an interval during which its node was down;
* an empty schedule leaves the availability machinery untouched;
* under the micro-batching scheduler: no batch spans a node-downtime window,
  a batch costs at least its longest member's solo time (and at most the
  sequential sum), and every admitted request still terminates exactly once;
* the EDF queue key never inverts two same-class deadlines on one node queue.
"""

import math
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.d3 import D3Config, D3System
from repro.network.faults import (
    FaultSchedule,
    LinkDown,
    LinkUp,
    NodeDown,
    NodeUp,
)
from repro.runtime.scheduler import BatchingScheduler, DeadlineScheduler
from repro.runtime.workload import Workload

#: Fault targets of the 3-edge-node canonical testbed the suite runs on.
NODE_TARGETS = ("edge-0", "edge-1", "edge-2", "cloud-0")
LINK_TARGETS = ("device-edge", "edge-cloud", "device-cloud")


@pytest.fixture(scope="module")
def system():
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=3,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


raw_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False),
        st.sampled_from(NODE_TARGETS + LINK_TARGETS),
        st.booleans(),  # True = down, False = up
    ),
    max_size=8,
)

workload_params = st.tuples(
    st.integers(min_value=1, max_value=6),  # num_requests
    st.floats(min_value=0.5, max_value=10.0, allow_nan=False),  # rate_rps
    st.integers(min_value=0, max_value=2**16),  # seed
)


def build_schedule(raw) -> FaultSchedule:
    events = []
    for time_s, target, is_down in raw:
        if target in NODE_TARGETS:
            events.append(NodeDown(time_s, target) if is_down else NodeUp(time_s, target))
        else:
            events.append(LinkDown(time_s, target) if is_down else LinkUp(time_s, target))
    return FaultSchedule(events)


def down_intervals(schedule: FaultSchedule, target: str):
    """The [down, up) spans of one target (open span = down forever)."""
    spans, opened = [], None
    for event in schedule.events:
        if event.target != target:
            continue
        if event.is_failure and opened is None:
            opened = event.time_s
        elif not event.is_failure and opened is not None:
            spans.append((opened, event.time_s))
            opened = None
    if opened is not None:
        spans.append((opened, float("inf")))
    return spans


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(raw=raw_events, params=workload_params)
def test_serving_invariants_under_faults(system, raw, params):
    num_requests, rate_rps, seed = params
    schedule = build_schedule(raw)
    workload = Workload.poisson(
        "alexnet", num_requests=num_requests, rate_rps=rate_rps, seed=seed
    )
    report = system.serve(workload, faults=schedule, max_retries=2)

    # -- every request terminates exactly once, completed xor failed -------
    assert report.num_requests == num_requests
    ids = [record.request_id for record in report.records]
    assert len(set(ids)) == num_requests
    for record in report.records:
        assert record.status in ("completed", "failed")
        assert record.completion_s >= record.arrival_s
    assert report.num_completed + report.num_failed == num_requests
    assert 0.0 <= report.availability <= 1.0

    # -- per-node timelines are monotone and non-overlapping ---------------
    by_node = {}
    for record in report.records:
        for event in record.report.events:
            assert event.end_s >= event.start_s
            if event.kind == "compute":
                by_node.setdefault(event.node, []).append((event.start_s, event.end_s))
        for transfer in record.report.transfers:
            assert transfer.duration_s >= 0.0
    for node, spans in by_node.items():
        spans.sort()
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= prev_end - 1e-9, f"overlapping tasks on {node}"

    # -- clean completions are bounded below by the idle critical path -----
    for record in report.records:
        if record.completed and record.retries == 0:
            assert record.ideal_latency_s is not None
            assert record.latency_s >= record.ideal_latency_s - 1e-9

    # -- no task runs on a down node ---------------------------------------
    for target in NODE_TARGETS:
        for down_s, up_s in down_intervals(schedule, target):
            for record in report.records:
                for event in record.report.events:
                    if event.node != target:
                        continue
                    assert not (event.start_s < up_s and event.end_s > down_s), (
                        f"{event} overlaps {target} downtime [{down_s}, {up_s})"
                    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(raw=raw_events, params=workload_params)
def test_batching_invariants_under_faults(system, raw, params):
    """The micro-batching scheduler upholds the engine's invariants no
    matter what dies when:

    * no batch — no compute event at all — spans a node-downtime window;
    * a batch's compute time is bounded below by its longest member's solo
      time and above by the members' sequential sum;
    * every admitted request still terminates exactly once.
    """
    num_requests, rate_rps, seed = params
    schedule = build_schedule(raw)
    workload = Workload.poisson(
        "alexnet", num_requests=num_requests, rate_rps=max(rate_rps, 4.0), seed=seed
    )
    report = system.serve(
        workload,
        faults=schedule,
        max_retries=2,
        scheduler=BatchingScheduler(max_batch=4, max_wait_ms=20.0),
    )

    # -- termination exactly once, shed xor served ------------------------
    assert len(report.records) == num_requests
    assert len({r.request_id for r in report.records}) == num_requests
    for record in report.records:
        assert record.status in ("completed", "failed", "rejected")
    assert (
        report.num_completed + report.num_failed + report.num_rejected == num_requests
    )

    # -- batch cost bounds -------------------------------------------------
    for batch in report.batches:
        assert batch.duration_s >= batch.longest_solo_s - 1e-12
        assert batch.duration_s <= batch.total_solo_s + 1e-12
        assert batch.size > 1
    if report.batches:
        assert max(report.batch_occupancy) <= 4

    # -- no batch overlaps a downtime window of its node -------------------
    for target in NODE_TARGETS:
        for down_s, up_s in down_intervals(schedule, target):
            for batch in report.batches:
                if batch.node != target:
                    continue
                assert not (batch.start_s < up_s and batch.end_s > down_s), (
                    f"batch {batch} overlaps {target} downtime [{down_s}, {up_s})"
                )
            for record in report.records:
                for event in record.report.events:
                    if event.node != target:
                        continue
                    assert not (event.start_s < up_s and event.end_s > down_s), (
                        f"{event} overlaps {target} downtime [{down_s}, {up_s})"
                    )


edf_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # priority class
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # arrival
        st.one_of(st.none(), st.floats(min_value=1.0, max_value=1000.0)),  # slo
    ),
    min_size=2,
    max_size=24,
)


@settings(max_examples=50, deadline=None)
@given(raw=edf_requests)
def test_edf_never_inverts_same_class_deadlines(raw):
    """Sorting by the EDF queue key never serves a later same-class deadline
    before an earlier one on the same node queue."""
    scheduler = DeadlineScheduler()
    keys = []
    for seq, (priority, arrival, slo) in enumerate(raw):
        task = SimpleNamespace(
            unit=SimpleNamespace(
                topo_key=0,
                state=SimpleNamespace(
                    request=SimpleNamespace(
                        priority=priority, arrival_s=arrival, slo_ms=slo, index=seq
                    )
                ),
            )
        )
        keys.append(scheduler.queue_key(task, seq))
    ordered = sorted(keys)
    # Priority classes are strictly respected...
    assert [k[0] for k in ordered] == sorted(k[0] for k in ordered)
    # ...and within one class, absolute deadlines are never inverted.
    for previous, current in zip(ordered, ordered[1:]):
        if previous[0] == current[0]:
            assert previous[1] <= current[1] or (
                math.isinf(previous[1]) and math.isinf(current[1])
            )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(params=workload_params)
def test_empty_schedule_has_no_availability_side_effects(system, params):
    num_requests, rate_rps, seed = params
    workload = Workload.poisson(
        "alexnet", num_requests=num_requests, rate_rps=rate_rps, seed=seed
    )
    report = system.serve(workload, faults=FaultSchedule([]))
    assert report.availability == 1.0
    assert report.num_retried == 0
    assert report.failover_replans == 0
    assert report.node_down_s == {} and report.link_down_s == {}
    assert all(record.retries == 0 for record in report.records)
