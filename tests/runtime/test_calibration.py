"""Unit tests for the online cost calibrator and bandwidth forecaster."""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.network.conditions import BandwidthTrace, get_condition
from repro.runtime.calibration import (
    AdaptationTracker,
    BandwidthForecaster,
    CalibrationConfig,
    EwmaEstimator,
    OnlineCostCalibrator,
    resolve_calibration,
)
from repro.runtime.workload import Workload


class TestCalibrationConfig:
    def test_defaults_are_valid(self):
        config = CalibrationConfig()
        assert 0 < config.alpha <= 1
        assert config.horizon_s > 0

    def test_zero_horizon_means_reactive(self):
        assert CalibrationConfig(horizon_s=0.0).horizon_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"trend_beta": -0.1},
            {"horizon_s": -1.0},
            {"rel_epsilon": -1e-9},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CalibrationConfig(**kwargs)


class TestEwmaEstimator:
    def test_seeds_at_first_observation(self):
        est = EwmaEstimator(alpha=0.3)
        assert est.observe(2.0, 1e-6) is True
        assert est.mean == 2.0

    def test_moves_toward_new_values(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe(1.0, 1e-6)
        est.observe(2.0, 1e-6)
        assert est.mean == pytest.approx(1.5)

    def test_tiny_move_does_not_report_change(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe(1.0, 1e-6)
        assert est.observe(1.0 + 1e-9, 0.1) is False


class TestOnlineCostCalibrator:
    def test_revision_bumps_only_on_update(self):
        cal = OnlineCostCalibrator()
        rev0 = cal.revision
        cal.observe_task("edge-0", "conv1", "edge", 0.010)
        assert cal.revision > rev0
        rev1 = cal.revision
        # An identical observation moves nothing: revision must hold still.
        cal.observe_task("edge-0", "conv1", "edge", 0.010)
        assert cal.revision == rev1

    def test_layer_seconds_prefers_observations(self):
        cal = OnlineCostCalibrator()
        cal.observe_task("edge-0", "conv1", "edge", 0.010)
        assert cal.layer_seconds("conv1", "edge", 0.5) == pytest.approx(0.010)
        assert cal.layer_seconds("conv1", "cloud", 0.5) == 0.5  # unseen tier

    def test_transfer_observations_feed_pair_estimates(self):
        cal = OnlineCostCalibrator()
        # 1 MB in 1 s = 8 Mbps observed on the edge->cloud route.
        cal.observe_route("edge", "cloud", 1_000_000, 1.0)
        assert cal.pair_transfer_seconds(2_000_000, "edge", "cloud", 0.1) == pytest.approx(2.0)
        # The orientation must not matter (links are symmetric).
        assert cal.pair_transfer_seconds(2_000_000, "cloud", "edge", 0.1) == pytest.approx(2.0)

    def test_same_tier_and_degenerate_observations_ignored(self):
        cal = OnlineCostCalibrator()
        rev = cal.revision
        cal.observe_route("edge", "edge", 1_000_000, 1.0)
        cal.observe_transfer("l0", 1_000_000, 0.0)
        cal.observe_task("edge-0", "conv1", "edge", -1.0)
        assert cal.revision == rev

    def test_latency_factor_clamped(self):
        cal = OnlineCostCalibrator()
        cal.observe_request("alexnet", 10.0, 0.1)  # ratio 100, way past clamp
        assert cal.latency_factor("alexnet") == 4.0
        assert cal.latency_factor("unseen") == 1.0

    def test_degenerate_request_observations_ignored(self):
        cal = OnlineCostCalibrator()
        cal.observe_request("alexnet", 0.0, 0.1)
        cal.observe_request("alexnet", 0.1, 0.0)
        assert cal.latency_factor("alexnet") == 1.0

    def test_per_node_and_per_link_tables_stay_queryable(self):
        cal = OnlineCostCalibrator()
        cal.observe_task("edge-0", "conv1", "edge", 0.010)
        cal.observe_transfer("edge-0-cloud-0", 1_000_000, 1.0)  # 8 Mbps
        assert cal.node_layer_seconds("edge-0", "conv1", 0.5) == pytest.approx(0.010)
        assert cal.node_layer_seconds("edge-1", "conv1", 0.5) == 0.5
        assert cal.link_mbps("edge-0-cloud-0", 100.0) == pytest.approx(8.0)
        assert cal.link_mbps("unseen", 100.0) == 100.0


class TestBandwidthForecaster:
    def test_unseeded_forecast_is_unity(self):
        assert BandwidthForecaster().forecast(1.0) == 1.0

    def test_constant_signal_forecasts_itself(self):
        fc = BandwidthForecaster()
        for t in range(10):
            fc.observe(float(t), 0.8)
        assert fc.forecast(5.0) == pytest.approx(0.8)

    def test_declining_signal_forecasts_below_last_sample(self):
        fc = BandwidthForecaster(alpha=0.6, beta=0.6)
        for t, v in [(0.0, 1.0), (1.0, 0.8), (2.0, 0.6), (3.0, 0.4)]:
            fc.observe(t, v)
        assert fc.forecast(1.0) < 0.4

    def test_forecast_is_floored_above_zero(self):
        fc = BandwidthForecaster(alpha=1.0, beta=1.0)
        fc.observe(0.0, 1.0)
        fc.observe(1.0, 0.1)
        assert fc.forecast(100.0) > 0.0

    def test_same_instant_reobservation_refreshes_level_only(self):
        fc = BandwidthForecaster(alpha=0.5, beta=0.5)
        fc.observe(0.0, 1.0)
        fc.observe(1.0, 0.8)
        trend_before = fc.trend
        fc.observe(1.0, 0.4)  # zero dt: slope undefined, level moves
        assert fc.trend == trend_before
        assert fc.level < 0.8

    @pytest.mark.parametrize("kwargs", [{"alpha": 0.0}, {"alpha": 1.5}, {"beta": 0.0}, {"beta": 2.0}])
    def test_invalid_gains_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BandwidthForecaster(**kwargs)


class TestAdaptationTracker:
    def test_confirmed_prediction_is_not_a_mispredict(self):
        tracker = AdaptationTracker()
        tracker.record_proactive(1.0, horizon_s=1.0, reference=1.0)
        tracker.observe_sample(1.5, 0.5)  # breach materialised inside horizon
        tracker.finish(10.0)
        assert tracker.proactive == 1
        assert tracker.mispredicts == 0

    def test_expired_prediction_is_a_mispredict(self):
        tracker = AdaptationTracker()
        tracker.record_proactive(1.0, horizon_s=1.0, reference=1.0)
        tracker.observe_sample(3.0, 1.0)  # in band, past the deadline
        assert tracker.mispredicts == 1

    def test_finish_expires_pending_predictions(self):
        tracker = AdaptationTracker()
        tracker.record_proactive(1.0, horizon_s=1.0, reference=1.0)
        tracker.finish(5.0)
        assert tracker.mispredicts == 1

    def test_events_record_order_and_kind(self):
        tracker = AdaptationTracker()
        tracker.record_proactive(1.0, horizon_s=1.0, reference=1.0)
        tracker.record_reactive(2.0)
        assert tracker.events == [(1.0, "proactive"), (2.0, "reactive")]


class TestResolveCalibration:
    def test_none_and_false_disable(self):
        assert resolve_calibration(None) is None
        assert resolve_calibration(False) is None

    def test_true_and_config_build_fresh_calibrators(self):
        assert isinstance(resolve_calibration(True), OnlineCostCalibrator)
        config = CalibrationConfig(horizon_s=0.3)
        cal = resolve_calibration(config)
        assert cal.config is config

    def test_calibrator_passes_through(self):
        cal = OnlineCostCalibrator()
        assert resolve_calibration(cal) is cal

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_calibration(42)


class TestServeWithCalibration:
    @pytest.fixture(scope="class")
    def system(self):
        return D3System(
            D3Config(
                network="optical",
                num_edge_nodes=2,
                use_regression=False,
                profiler_noise_std=0.0,
            )
        )

    @pytest.fixture(scope="class")
    def workload(self):
        return Workload.poisson("alexnet", num_requests=12, rate_rps=8.0, seed=3)

    def test_calibration_off_reports_zero_counters(self, system, workload):
        report = system.serve(workload)
        assert report.calibration_updates == 0
        assert report.proactive_repartitions == 0
        assert report.first_adaptation_s is None

    def test_calibration_on_absorbs_updates(self, system, workload):
        calibrator = OnlineCostCalibrator()
        report = system.serve(workload, calibration=calibrator)
        assert report.calibration_updates == calibrator.updates > 0
        # Steady bandwidth: learning costs must not trigger adaptation churn.
        assert report.proactive_repartitions == 0

    def test_calibrated_run_serves_every_request(self, system, workload):
        report = system.serve(workload, calibration=True)
        assert report.num_completed == report.num_requests

    def test_forecast_fires_proactively_under_drift(self, system):
        trace = BandwidthTrace(
            get_condition("optical"),
            [(0.0, 1.0), (0.6, 0.8), (1.0, 0.55), (1.4, 0.4), (2.0, 0.35)],
        )
        workload = Workload.poisson("alexnet", num_requests=20, rate_rps=10.0, seed=17)
        report = system.serve(
            workload,
            trace=trace,
            calibration=CalibrationConfig(alpha=0.6, trend_beta=0.6, horizon_s=0.8),
        )
        assert report.proactive_repartitions > 0
        assert report.first_adaptation_s is not None

    def test_summary_mentions_calibration_only_when_active(self, system, workload):
        plain = system.serve(workload).summary()
        calibrated = system.serve(workload, calibration=True).summary()
        assert "calibration" not in plain
        assert "calibration" in calibrated
