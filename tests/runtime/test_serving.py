"""Tests for the discrete-event serving engine.

The load-bearing properties: the event queue never double-books a compute
node, transfers never overlap beyond a link's capacity (FIFO serialization),
the degenerate single-request case coincides with the one-shot executor, and
queueing delay appears exactly when arrivals outpace service.
"""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.core.placement import PlacementPlan, PlanEvaluator, Tier
from repro.runtime.serving import ServingRequest, ServingSimulator
from repro.runtime.workload import Workload


def _assert_disjoint(intervals, context):
    """Intervals (start, end) must not overlap (closed-open semantics)."""
    ordered = sorted(intervals)
    for (start1, end1), (start2, end2) in zip(ordered, ordered[1:]):
        assert start2 >= end1 - 1e-12, (
            f"{context}: interval ({start2:.6f}, {end2:.6f}) overlaps "
            f"({start1:.6f}, {end1:.6f})"
        )


@pytest.fixture(scope="module")
def serving_system():
    """A fast deterministic D3 deployment for serving tests."""
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


@pytest.fixture(scope="module")
def loaded_report(serving_system):
    """A saturating 40-request Poisson episode (computed once, asserted often)."""
    workload = Workload.poisson("alexnet", num_requests=40, rate_rps=40.0, seed=3)
    return serving_system.serve(workload)


class TestSingleRequestEquivalence:
    def test_matches_one_shot_executor(self, alexnet, alexnet_profile, cluster_one_edge):
        """One request on the serving engine == the one-shot list schedule."""
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        request = ServingRequest(
            index=0,
            request_id="req-0",
            graph=alexnet,
            plan=plan,
            profile=alexnet_profile,
            condition=cluster_one_edge.network,
        )
        records = ServingSimulator(cluster_one_edge, link_contention="none").run([request])
        expected = PlanEvaluator(alexnet_profile, cluster_one_edge.network).objective(plan)
        assert records[0].latency_s == pytest.approx(expected, rel=1e-6)

    def test_serve_single_equals_run(self, serving_system, alexnet):
        result = serving_system.run(alexnet)
        report = serving_system.serve(Workload.single(alexnet))
        assert report.num_requests == 1
        assert report.records[0].latency_s == pytest.approx(
            result.end_to_end_latency_s, rel=1e-6
        )

    def test_arrival_offset_shifts_absolute_times(self, alexnet, alexnet_profile, cluster_one_edge):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        request = ServingRequest(
            index=0,
            request_id="req-0",
            graph=alexnet,
            plan=plan,
            profile=alexnet_profile,
            condition=cluster_one_edge.network,
            arrival_s=5.0,
        )
        records = ServingSimulator(cluster_one_edge).run([request])
        assert min(e.start_s for e in records[0].report.events) >= 5.0
        assert records[0].latency_s == pytest.approx(
            records[0].completion_s - 5.0, rel=1e-12
        )


class TestEventQueueInvariants:
    def test_no_node_runs_two_events_at_once(self, loaded_report):
        by_node = {}
        for record in loaded_report.records:
            for event in record.report.events:
                if event.kind == "compute" and event.duration_s > 0:
                    by_node.setdefault(event.node, []).append((event.start_s, event.end_s))
        assert by_node, "expected compute events"
        for node, intervals in by_node.items():
            _assert_disjoint(intervals, f"node {node}")

    def test_transfers_never_exceed_link_capacity(self, loaded_report):
        by_link = {}
        for record in loaded_report.records:
            for transfer in record.report.transfers:
                if transfer.duration_s > 0:
                    key = frozenset((transfer.source_tier, transfer.destination_tier))
                    by_link.setdefault(key, []).append((transfer.start_s, transfer.end_s))
        assert by_link, "expected inter-tier transfers"
        for link, intervals in by_link.items():
            _assert_disjoint(intervals, f"link {sorted(t.value for t in link)}")

    def test_events_follow_arrival(self, loaded_report):
        for record in loaded_report.records:
            for event in record.report.events:
                assert event.start_s >= record.arrival_s - 1e-12
            assert record.completion_s >= record.arrival_s

    def test_every_request_completes(self, loaded_report):
        assert loaded_report.num_requests == 40
        gathered = {record.request_id for record in loaded_report.records}
        assert gathered == {f"req-{i}" for i in range(40)}

    def test_determinism(self, serving_system):
        workload = Workload.poisson("alexnet", num_requests=15, rate_rps=25.0, seed=9)
        first = serving_system.serve(workload)
        second = serving_system.serve(workload)
        assert first.latencies_s == second.latencies_s


class TestContention:
    def test_queueing_appears_under_load(self, loaded_report):
        """At 40 req/s the stream far outpaces service: queueing must show."""
        queueing = loaded_report.mean_queueing_delay_s()
        assert queueing is not None and queueing > 0
        p50 = loaded_report.latency_percentiles()["p50"]
        ideal = loaded_report.records[0].ideal_latency_s
        assert p50 > ideal * 1.05

    def test_low_rate_matches_one_shot(self, serving_system):
        """Sparse arrivals see an idle cluster: latency == one-shot latency."""
        workload = Workload.constant_rate("alexnet", num_requests=5, interval_s=30.0)
        report = serving_system.serve(workload)
        for record in report.records:
            assert record.latency_s == pytest.approx(record.ideal_latency_s, rel=1e-6)
            assert record.queueing_delay_s == pytest.approx(0.0, abs=1e-9)

    def test_fifo_links_not_faster_than_uncontended(self, serving_system):
        workload = Workload.poisson("alexnet", num_requests=10, rate_rps=50.0, seed=1)
        contended = serving_system.serve(workload, link_contention="fifo")
        free = serving_system.serve(workload, link_contention="none")
        assert contended.mean_latency_s >= free.mean_latency_s - 1e-12

    def test_unknown_contention_mode_rejected(self, cluster_one_edge):
        with pytest.raises(ValueError):
            ServingSimulator(cluster_one_edge, link_contention="magic")


class TestServingReport:
    def test_throughput_and_makespan(self, loaded_report):
        assert loaded_report.makespan_s > 0
        assert loaded_report.throughput_rps == pytest.approx(
            loaded_report.num_requests / loaded_report.makespan_s
        )

    def test_percentiles_ordered(self, loaded_report):
        pct = loaded_report.latency_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_node_utilisation_bounded(self, loaded_report):
        utilisation = loaded_report.node_utilisation()
        assert utilisation
        for value in utilisation.values():
            assert 0.0 <= value <= 1.0

    def test_summary_mentions_key_quantities(self, loaded_report):
        text = loaded_report.summary()
        assert "p50" in text and "req/s" in text and "plans computed" in text

    def test_vsm_requests_fan_out_over_edge_nodes(self, serving_system):
        report = serving_system.serve(Workload.single("vgg16"))
        record = report.records[0]
        edge_nodes = {
            e.node for e in record.report.events if e.tier == Tier.EDGE and e.kind == "compute"
        }
        assert len(edge_nodes) == 4
