"""Tests for the simulated cluster and the discrete-event executor."""

import pytest

from repro.core.hpa import HorizontalPartitioner
from repro.core.placement import PlacementPlan, PlanEvaluator, Tier
from repro.core.vsm import VerticalSeparationModule
from repro.profiling.hardware import EDGE_DESKTOP, JETSON_NANO
from repro.runtime.cluster import Cluster
from repro.runtime.executor import DistributedExecutor
from repro.runtime.messages import TensorTransfer
from repro.runtime.node import ComputeNode


class TestComputeNode:
    def test_schedule_advances_availability(self):
        node = ComputeNode("n", Tier.EDGE, EDGE_DESKTOP)
        start, end = node.schedule(ready_at=1.0, duration=0.5)
        assert (start, end) == (1.0, 1.5)
        start, end = node.schedule(ready_at=0.0, duration=0.25)
        assert start == 1.5  # the node was still busy
        assert node.busy_seconds == pytest.approx(0.75)

    def test_reset(self):
        node = ComputeNode("n", Tier.EDGE, EDGE_DESKTOP)
        node.schedule(0.0, 1.0)
        node.reset()
        assert node.available_at == 0.0 and node.busy_seconds == 0.0

    def test_negative_duration_rejected(self):
        node = ComputeNode("n", Tier.EDGE, EDGE_DESKTOP)
        with pytest.raises(ValueError):
            node.schedule(0.0, -1.0)


class TestCluster:
    def test_build_default_testbed(self):
        cluster = Cluster.build(network="wifi", num_edge_nodes=4)
        assert cluster.num_edge_nodes == 4
        assert cluster.device.tier == Tier.DEVICE
        assert cluster.cloud.tier == Tier.CLOUD
        assert len(cluster.all_nodes) == 6

    def test_tier_hardware_mapping(self, cluster_one_edge):
        hardware = cluster_one_edge.tier_hardware()
        assert set(hardware) == {"device", "edge", "cloud"}

    def test_primary_nodes(self, cluster_four_edge):
        assert cluster_four_edge.primary_node(Tier.EDGE).name == "edge-0"
        assert cluster_four_edge.primary_node(Tier.CLOUD) is cluster_four_edge.cloud

    def test_invalid_edge_count(self):
        with pytest.raises(ValueError):
            Cluster.build(num_edge_nodes=0)

    def test_custom_device_hardware(self):
        cluster = Cluster.build(device_hardware=JETSON_NANO)
        assert cluster.device.hardware is JETSON_NANO

    def test_with_network(self, cluster_one_edge):
        from repro.network.conditions import get_condition

        clone = cluster_one_edge.with_network(get_condition("4g"))
        assert clone.network.name == "4g"
        assert clone.num_edge_nodes == cluster_one_edge.num_edge_nodes


class TestTensorTransfer:
    def test_backbone_detection(self):
        transfer = TensorTransfer("a", "b", Tier.EDGE, Tier.CLOUD, 100, 0.0, 0.1)
        assert transfer.crosses_backbone and not transfer.within_lan

    def test_lan_detection(self):
        transfer = TensorTransfer("a", "b", Tier.DEVICE, Tier.EDGE, 100, 0.0, 0.1)
        assert transfer.within_lan and not transfer.crosses_backbone

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            TensorTransfer("a", "b", Tier.DEVICE, Tier.EDGE, -1, 0.0, 0.1)


class TestDistributedExecutor:
    def test_single_tier_latency_matches_evaluator(self, alexnet, alexnet_profile, cluster_one_edge):
        """For a chain on one tier the simulation equals the analytic objective."""
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        report = DistributedExecutor(alexnet, plan, alexnet_profile, cluster_one_edge).execute()
        expected = PlanEvaluator(alexnet_profile, cluster_one_edge.network).objective(plan)
        assert report.end_to_end_latency_s == pytest.approx(expected, rel=1e-6)

    def test_dag_simulation_not_slower_than_objective(self, resnet18, resnet_profile, cluster_one_edge):
        """Branches may overlap across tiers, so the DES can only be faster."""
        plan = HorizontalPartitioner(resnet_profile, cluster_one_edge.network).partition(resnet18)
        report = DistributedExecutor(resnet18, plan, resnet_profile, cluster_one_edge).execute()
        objective = PlanEvaluator(resnet_profile, cluster_one_edge.network).objective(plan)
        assert report.end_to_end_latency_s <= objective * 1.0001

    def test_transfers_recorded_for_cut_edges(self, alexnet, alexnet_profile, cluster_one_edge):
        plan = PlacementPlan.single_tier(alexnet, Tier.CLOUD)
        report = DistributedExecutor(alexnet, plan, alexnet_profile, cluster_one_edge).execute()
        assert len(report.transfers) == 1
        assert report.bytes_to_cloud == alexnet.input_vertex.output_bytes

    def test_events_cover_all_vertices_without_vsm(self, alexnet, alexnet_profile, cluster_one_edge):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        report = DistributedExecutor(alexnet, plan, alexnet_profile, cluster_one_edge).execute()
        assert len(report.events) == len(alexnet)

    def test_vsm_uses_all_edge_nodes(self, resnet18, resnet_profile, cluster_four_edge):
        partitioner = HorizontalPartitioner(resnet_profile, cluster_four_edge.network)
        plan = partitioner.partition(resnet18)
        vsm_plan = VerticalSeparationModule(2, 2).plan(resnet18, plan, Tier.EDGE)
        report = DistributedExecutor(
            resnet18, plan, resnet_profile, cluster_four_edge, vsm_plan
        ).execute()
        busy_nodes = {e.node for e in report.events if e.tier == Tier.EDGE}
        assert len(busy_nodes) == 4

    def test_vsm_reduces_latency(self, resnet18, resnet_profile, cluster_four_edge):
        partitioner = HorizontalPartitioner(resnet_profile, cluster_four_edge.network)
        plan = partitioner.partition(resnet18)
        vsm_plan = VerticalSeparationModule(2, 2).plan(resnet18, plan, Tier.EDGE)
        without = DistributedExecutor(resnet18, plan, resnet_profile, cluster_four_edge).execute()
        with_vsm = DistributedExecutor(
            resnet18, plan, resnet_profile, cluster_four_edge, vsm_plan
        ).execute()
        assert with_vsm.end_to_end_latency_s < without.end_to_end_latency_s

    def test_report_accessors(self, alexnet, alexnet_profile, cluster_one_edge):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        report = DistributedExecutor(alexnet, plan, alexnet_profile, cluster_one_edge).execute()
        assert report.tier_busy_seconds()[Tier.EDGE] > 0
        assert report.node_busy_seconds()["edge-0"] > 0
        assert report.tier_makespan_seconds()[Tier.EDGE] > 0
        assert "end-to-end" in report.summary()

    def test_wrong_graph_rejected(self, alexnet, resnet18, resnet_profile, cluster_one_edge):
        plan = PlacementPlan.single_tier(resnet18, Tier.EDGE)
        with pytest.raises(ValueError):
            DistributedExecutor(alexnet, plan, resnet_profile, cluster_one_edge)
