"""Property-based invariants of the calibration/forecasting machinery.

Hypothesis drives the four invariants the ISSUE pins:

* an EWMA estimate always lies within the observed min/max envelope (it is
  a convex combination of its observations);
* a constant bandwidth signal never triggers a proactive repartition — the
  Holt trend is exactly zero, so every forecast equals the signal;
* the forecaster is a pure function of its observation history: replaying
  the same (time, value) sequence reproduces the same forecasts;
* the calibrator's revision counter bumps only on observations that
  actually move an estimate — replaying a value verbatim leaves it fixed.
"""

from hypothesis import given, settings, strategies as st

from repro.core.d3 import D3Config, D3System
from repro.network.conditions import BandwidthTrace, get_condition
from repro.runtime.calibration import (
    BandwidthForecaster,
    CalibrationConfig,
    EwmaEstimator,
    OnlineCostCalibrator,
)
from repro.runtime.workload import Workload

values = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)

#: Strictly increasing observation times with matched values.
histories = st.lists(
    st.tuples(values, values), min_size=1, max_size=30
).map(
    lambda pairs: [
        (sum(dt for dt, _ in pairs[: i + 1]), v) for i, (_, v) in enumerate(pairs)
    ]
)


class TestEwmaEnvelope:
    @given(st.lists(values, min_size=1, max_size=50), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_mean_stays_within_observed_envelope(self, samples, alpha):
        est = EwmaEstimator(alpha=alpha)
        for sample in samples:
            est.observe(sample, 1e-9)
            assert min(samples) - 1e-9 <= est.mean <= max(samples) + 1e-9


class TestConstantSignalIsQuiet:
    @given(
        st.floats(min_value=0.2, max_value=2.0),
        st.integers(min_value=4, max_value=16),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_constant_trace_never_fires_proactively(self, level, num, horizon):
        fc = BandwidthForecaster(alpha=0.6, beta=0.6)
        for i in range(num):
            fc.observe(float(i) * 0.4, level)
        # Zero trend: the forecast IS the level, for any horizon.
        assert abs(fc.forecast(horizon) - level) < 1e-9

    def test_constant_trace_serving_run_has_zero_proactive(self):
        system = D3System(
            D3Config(
                network="optical",
                num_edge_nodes=2,
                use_regression=False,
                profiler_noise_std=0.0,
            )
        )
        trace = BandwidthTrace(get_condition("optical"), [(0.0, 1.0), (5.0, 1.0)])
        workload = Workload.poisson("alexnet", num_requests=15, rate_rps=8.0, seed=9)
        report = system.serve(
            workload,
            trace=trace,
            calibration=CalibrationConfig(alpha=0.6, trend_beta=0.6, horizon_s=1.0),
        )
        assert report.proactive_repartitions == 0
        assert report.forecast_mispredicts == 0


class TestForecasterDeterminism:
    @given(histories, st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=200, deadline=None)
    def test_identical_history_identical_forecast(self, history, horizon):
        first = BandwidthForecaster(alpha=0.4, beta=0.3)
        second = BandwidthForecaster(alpha=0.4, beta=0.3)
        for t, v in history:
            first.observe(t, v)
            second.observe(t, v)
        assert first.forecast(horizon) == second.forecast(horizon)
        assert first.level == second.level and first.trend == second.trend


class TestRevisionDiscipline:
    @given(st.lists(st.tuples(st.sampled_from(("a", "b")), values), min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_revision_bumps_only_on_actual_updates(self, observations):
        cal = OnlineCostCalibrator()
        for label, duration in observations:
            before = cal.revision
            cal.observe_task("edge-0", label, "edge", duration)
            first_delta = cal.revision - before
            assert first_delta >= 0
            # Replaying the identical observation converges the EWMA toward a
            # fixed point it is already at most rel_epsilon away from after
            # enough repeats; a verbatim replay of the current mean must
            # never bump the revision.
            mean = cal.layer_seconds(label, "edge", 0.0)
            before = cal.revision
            cal.observe_task("edge-0", label, "edge", mean)
            assert cal.revision == before

    def test_lookup_never_bumps_revision(self):
        cal = OnlineCostCalibrator()
        cal.observe_task("edge-0", "conv1", "edge", 0.01)
        before = cal.revision
        cal.layer_seconds("conv1", "edge", 0.5)
        cal.pair_transfer_seconds(1000, "edge", "cloud", 0.5)
        cal.latency_factor("alexnet")
        assert cal.revision == before
