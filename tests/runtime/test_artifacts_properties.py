"""Property-based invariants of the per-node weight cache.

Hypothesis drives random operation sequences (admit / hit / pin / unpin)
through a :class:`~repro.runtime.artifacts.WeightCache` and asserts the
invariants the ISSUE pins:

* resident bytes never exceed capacity (and internal accounting never
  drifts from the sum of resident entry sizes);
* a model is cold-started exactly once per eviction–reload cycle: loads
  observed for one model = evictions of that model + 1 (the initial load)
  while it stays resident;
* eviction never removes a pinned model (a model with in-flight tasks).

The end-to-end variant of the third invariant — the serving engine pins a
model for the lifetime of every request that executes on it — is asserted
against the full simulator in ``tests/runtime/test_memory_serving.py``.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.artifacts import CapacityError, WeightCache

CAPACITY = 1000

MODELS = ("a", "b", "c", "d")

#: One cache operation: (op, model, size).
operations = st.lists(
    st.tuples(
        st.sampled_from(("admit", "hit", "pin", "unpin")),
        st.sampled_from(MODELS),
        st.integers(min_value=0, max_value=CAPACITY + 200),
    ),
    max_size=60,
)


def drive(cache: WeightCache, ops):
    """Replay an op sequence, tracking loads/evictions/residency per model."""
    loads = {m: 0 for m in MODELS}
    evictions = {m: 0 for m in MODELS}
    pins = {m: 0 for m in MODELS}
    for op, model, size in ops:
        if op == "admit":
            if cache.resident(model):
                continue  # a resident model is never re-loaded: no cold start
            try:
                evicted = cache.admit(model, size)
            except CapacityError:
                continue
            loads[model] += 1
            for victim in evicted:
                evictions[victim] += 1
                assert pins[victim] == 0, "evicted a pinned model"
        elif op == "hit":
            if cache.resident(model):
                cache.record_hit(model)
        elif op == "pin":
            cache.pin(model)
            pins[model] += 1
        elif op == "unpin":
            if pins[model] > 0:
                cache.unpin(model)
                pins[model] -= 1
        # Core capacity invariant, checked after *every* operation.
        assert 0 <= cache.resident_bytes <= cache.capacity_bytes
    return loads, evictions


@settings(max_examples=200, deadline=None)
@given(ops=operations, eviction=st.sampled_from(("lru", "priority")))
def test_resident_bytes_never_exceed_capacity(ops, eviction):
    cache = WeightCache("prop", CAPACITY, eviction=eviction)
    drive(cache, ops)
    # Accounting cross-check: the counter equals the sum over entries.
    total = sum(
        cache._entries[m].size_bytes for m in cache.resident_models()
    )
    assert cache.resident_bytes == total
    assert cache.peak_resident_bytes <= cache.capacity_bytes


@settings(max_examples=200, deadline=None)
@given(ops=operations, eviction=st.sampled_from(("lru", "priority")))
def test_cold_start_exactly_once_per_eviction_reload_cycle(ops, eviction):
    cache = WeightCache("prop", CAPACITY, eviction=eviction)
    loads, evictions = drive(cache, ops)
    for model in MODELS:
        # Every load after the first must have been preceded by an eviction:
        # while resident, lookups are hits and never re-load.
        if cache.resident(model):
            assert loads[model] == evictions[model] + 1
        else:
            assert loads[model] == evictions[model]


@settings(max_examples=200, deadline=None)
@given(ops=operations, eviction=st.sampled_from(("lru", "priority")))
def test_eviction_never_removes_pinned_models(ops, eviction):
    # `drive` asserts pins[victim] == 0 on every eviction; this property
    # additionally checks the final state: every pinned resident model is
    # still resident after the whole sequence.
    cache = WeightCache("prop", CAPACITY, eviction=eviction)
    pinned_resident = set()
    for op, model, size in ops:
        if op == "admit" and not cache.resident(model):
            try:
                evicted = cache.admit(model, size)
            except CapacityError:
                continue
            assert not (set(evicted) & pinned_resident)
        elif op == "hit" and cache.resident(model):
            cache.record_hit(model)
        elif op == "pin":
            cache.pin(model)
            if cache.resident(model):
                pinned_resident.add(model)
        elif op == "unpin":
            cache.unpin(model)
            if cache.pin_count(model) == 0:
                pinned_resident.discard(model)
        pinned_resident = {
            m for m in pinned_resident if cache.pin_count(m) > 0 and cache.resident(m)
        }
        for model_name in pinned_resident:
            assert cache.resident(model_name)
