"""Elastic fleets: elasticity schedules, balancers, the autoscaler, and the
serving engine's join/drain/replica-group machinery.

Covers the subsystem bottom-up: event and schedule validation with the JSON
round-trip, balancer policies over fake replica states, autoscaler decision
mechanics, and then full ``D3System.serve`` runs — declarative schedules,
idempotent event semantics, graceful drains that never abort work, source
re-resolution when a pinned device drains (vs. the crash semantics that still
fail the request), and autoscaling under load.  Property-based invariants are
in ``TestElasticityProperties``.
"""

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.d3 import D3Config, D3System
from repro.network.faults import FaultSchedule, NodeDown
from repro.runtime.elasticity import (
    AUTOSCALER_POLICIES,
    BALANCER_NAMES,
    Autoscaler,
    ElasticityError,
    ElasticityEvent,
    ElasticitySchedule,
    JoinShortestQueueBalancer,
    LoadBalancer,
    NodeDrain,
    NodeJoin,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    load_elasticity_schedule,
    resolve_autoscaler,
    resolve_balancer,
)
from repro.runtime.workload import Workload
from repro.testing import serialize_report


@pytest.fixture(scope="module")
def system():
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


@pytest.fixture(scope="module")
def fleet_system():
    return D3System(
        D3Config(topology="multi_device", use_regression=False, profiler_noise_std=0.0)
    )


def compute_events(report, node):
    """Every compute event that ran on ``node``, across all requests."""
    return [
        event
        for record in report.records
        for event in record.report.events
        if event.node == node and event.kind == "compute"
    ]


# --------------------------------------------------------------------------- #
# Events and schedules
# --------------------------------------------------------------------------- #
class TestElasticityEvents:
    def test_abstract_base_cannot_be_scheduled(self):
        with pytest.raises(ElasticityError, match="abstract"):
            ElasticityEvent(0.0, "edge-0")

    def test_negative_time_rejected(self):
        with pytest.raises(ElasticityError, match="negative"):
            NodeJoin(-0.1, "edge-0")

    def test_empty_target_rejected(self):
        with pytest.raises(ElasticityError, match="target"):
            NodeDrain(1.0, "")

    def test_negative_provisioning_rejected(self):
        with pytest.raises(ElasticityError, match="[Pp]rovisioning"):
            NodeJoin(1.0, "edge-0", provision_s=-1.0)

    def test_join_ready_time_and_kind(self):
        join = NodeJoin(1.0, "edge-0", provision_s=0.5)
        assert join.is_join and join.ready_s == 1.5
        drain = NodeDrain(2.0, "edge-0")
        assert not drain.is_join and drain.kind == "node_drain"


class TestElasticitySchedule:
    def build(self):
        return ElasticitySchedule(
            [
                NodeJoin(1.0, "edge-2", provision_s=0.5),
                NodeDrain(2.0, "edge-1"),
                NodeJoin(3.0, "edge-1", provision_s=0.25),
            ],
            name="demo",
        )

    def test_empty_schedule_is_falsy(self):
        assert not ElasticitySchedule([])
        assert self.build()

    def test_initially_parked_is_first_event_join(self):
        # edge-2's first event is a join -> parked; edge-1's is a drain -> active.
        assert self.build().initially_parked() == frozenset({"edge-2"})

    def test_state_at_applies_provisioning_and_drains(self):
        schedule = self.build()
        assert schedule.state_at(0.0) == frozenset({"edge-2"})
        # Joined but still provisioning at 1.4; ready exactly at 1.5.
        assert schedule.state_at(1.4) == frozenset({"edge-2"})
        assert schedule.state_at(1.5) == frozenset()
        # Draining counts as inactive from the drain instant.
        assert schedule.state_at(2.0) == frozenset({"edge-1"})
        # The re-join brings edge-1 back after its provisioning delay.
        assert schedule.state_at(3.25) == frozenset()

    def test_validate_against_topology(self, system):
        topology = system.cluster.topology
        self.build().validate_against(topology)
        with pytest.raises(ElasticityError, match="unknown node"):
            ElasticitySchedule([NodeDrain(1.0, "edge-99")]).validate_against(topology)

    def test_json_round_trip(self):
        schedule = self.build()
        parsed = ElasticitySchedule.from_json(schedule.to_json())
        assert parsed.name == "demo"
        assert list(parsed.events) == list(schedule.events)

    def test_from_json_defaults_provisioning(self):
        parsed = ElasticitySchedule.from_json(
            '{"events": [{"at": 1.0, "kind": "node_join", "target": "edge-0"}]}'
        )
        (event,) = parsed.events
        assert event.provision_s == NodeJoin(1.0, "x").provision_s

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ElasticityError, match="invalid"):
            ElasticitySchedule.from_json("{not json")
        with pytest.raises(ElasticityError, match="object"):
            ElasticitySchedule.from_json("[1, 2]")
        with pytest.raises(ElasticityError, match="unknown elasticity kind"):
            ElasticitySchedule.from_json(
                '{"events": [{"at": 0, "kind": "node_up", "target": "edge-0"}]}'
            )

    def test_load_passes_schedules_through_and_reads_files(self, tmp_path, system):
        schedule = self.build()
        assert load_elasticity_schedule(schedule) is schedule
        path = tmp_path / "elastic.json"
        path.write_text(schedule.to_json())
        loaded = load_elasticity_schedule(str(path), topology=system.cluster.topology)
        assert list(loaded.events) == list(schedule.events)

    def test_load_rejects_unknown_specs(self):
        with pytest.raises(ElasticityError, match="not a readable"):
            load_elasticity_schedule("no/such/schedule.json")


# --------------------------------------------------------------------------- #
# Balancers
# --------------------------------------------------------------------------- #
def member(name, queued=0, busy=False):
    return SimpleNamespace(
        node=SimpleNamespace(name=name), queue=[None] * queued, busy=busy or None
    )


class TestLoadBalancers:
    def test_round_robin_cycles_and_resets(self):
        balancer = RoundRobinBalancer()
        members = [member("a"), member("b"), member("c")]
        picks = [balancer.choose(members, 0.0).node.name for _ in range(4)]
        assert picks == ["a", "b", "c", "a"]
        balancer.reset()
        assert balancer.choose(members, 0.0).node.name == "a"

    def test_jsq_picks_least_outstanding_work(self):
        balancer = JoinShortestQueueBalancer()
        members = [member("a", queued=2), member("b", queued=0, busy=True), member("c", queued=1)]
        # b has depth 1 (in service), c has 1 queued, a has 2: tie b/c breaks
        # toward the earlier member.
        assert balancer.choose(members, 0.0).node.name == "b"

    def test_p2c_is_seeded_and_prefers_the_less_loaded_probe(self):
        balancer = PowerOfTwoBalancer(seed=4)
        members = [member("a", queued=5), member("b", queued=5), member("idle")]
        first_run = [balancer.choose(members, 0.0).node.name for _ in range(12)]
        balancer.reset()
        assert [balancer.choose(members, 0.0).node.name for _ in range(12)] == first_run
        # Whenever the idle member is probed it must win; it is probed with
        # probability 2/3 per choice, so 12 draws see it essentially surely.
        assert "idle" in first_run

    def test_p2c_single_member_short_circuits(self):
        only = member("a", queued=9)
        assert PowerOfTwoBalancer().choose([only], 0.0) is only

    def test_resolver(self):
        assert isinstance(resolve_balancer(None), RoundRobinBalancer)
        custom = JoinShortestQueueBalancer()
        assert resolve_balancer(custom) is custom
        assert {resolve_balancer(name).name for name in BALANCER_NAMES} == set(
            BALANCER_NAMES
        )
        with pytest.raises(ElasticityError, match="unknown balancer"):
            resolve_balancer("least-loaded")
        with pytest.raises(ElasticityError, match="not a balancer"):
            resolve_balancer(42)


# --------------------------------------------------------------------------- #
# Autoscaler policy mechanics
# --------------------------------------------------------------------------- #
class TestAutoscaler:
    def test_validation(self):
        with pytest.raises(ElasticityError, match="unknown autoscaler policy"):
            Autoscaler(policy="predictive")
        with pytest.raises(ElasticityError, match="interval"):
            Autoscaler(interval_s=0.0)
        with pytest.raises(ElasticityError, match="window"):
            Autoscaler(window=0)
        with pytest.raises(ElasticityError, match="cooldown"):
            Autoscaler(cooldown_s=-1.0)
        with pytest.raises(ElasticityError, match="at least one replica"):
            Autoscaler(min_replicas=0)
        with pytest.raises(ElasticityError, match="max_replicas"):
            Autoscaler(min_replicas=3, max_replicas=2)
        with pytest.raises(ElasticityError, match="initial_replicas"):
            Autoscaler(initial_replicas=0)
        with pytest.raises(ElasticityError, match="below"):
            Autoscaler(scale_up_at=0.5, scale_down_at=0.5)

    def test_default_thresholds_per_policy(self):
        for policy in AUTOSCALER_POLICIES:
            scaler = Autoscaler(policy=policy)
            assert scaler.scale_down_at < scaler.scale_up_at

    def test_initial_active_clamps_to_group_and_bounds(self):
        scaler = Autoscaler(min_replicas=2, max_replicas=3, initial_replicas=8)
        assert scaler.initial_active(group_size=6) == 3
        assert scaler.initial_active(group_size=2) == 2
        assert Autoscaler(min_replicas=2).initial_active(group_size=6) == 2

    def test_scale_up_then_cooldown(self):
        scaler = Autoscaler(
            policy="target-util", window=1, cooldown_s=1.0, scale_up_at=0.7,
            scale_down_at=0.2,
        )
        scaler.start()
        assert scaler.decide(0.9, 0.0, active=1, spare=2, time_s=0.5) == "up"
        # Within the cooldown even a saturated sample is ignored.
        assert scaler.decide(1.0, 0.0, active=2, spare=1, time_s=1.0) is None
        assert scaler.decide(1.0, 0.0, active=2, spare=1, time_s=2.0) == "up"

    def test_window_smooths_spikes(self):
        scaler = Autoscaler(window=4, cooldown_s=0.0, scale_up_at=0.75, scale_down_at=0.1)
        scaler.start()
        for tick, sample in enumerate((0.0, 0.0, 0.0)):
            assert scaler.decide(sample, 0.0, 1, 1, float(tick)) is None
        # One saturated tick averaged over the window stays below threshold.
        assert scaler.decide(1.0, 0.0, 1, 1, 3.0) is None

    def test_bounds_block_decisions(self):
        scaler = Autoscaler(window=1, cooldown_s=0.0, min_replicas=1, max_replicas=2)
        scaler.start()
        assert scaler.decide(1.0, 0.0, active=2, spare=1, time_s=0.0) is None  # at max
        assert scaler.decide(1.0, 0.0, active=1, spare=0, time_s=1.0) is None  # no spare
        assert scaler.decide(0.0, 0.0, active=1, spare=1, time_s=2.0) is None  # at min
        assert scaler.decide(0.0, 0.0, active=2, spare=0, time_s=3.0) == "down"

    def test_queue_threshold_policy_watches_depth(self):
        scaler = Autoscaler(policy="queue-threshold", window=1, cooldown_s=0.0)
        scaler.start()
        # Utilisation is irrelevant; the queue metric drives the decision.
        assert scaler.decide(0.0, 5.0, active=1, spare=1, time_s=0.0) == "up"
        assert scaler.decide(1.0, 0.0, active=2, spare=0, time_s=1.0) == "down"

    def test_resolver(self):
        assert resolve_autoscaler(None) is None
        scaler = Autoscaler()
        assert resolve_autoscaler(scaler) is scaler
        assert resolve_autoscaler("queue-threshold").policy == "queue-threshold"
        with pytest.raises(ElasticityError, match="not an autoscaler"):
            resolve_autoscaler(3.14)


# --------------------------------------------------------------------------- #
# Serving engine integration
# --------------------------------------------------------------------------- #
class TestElasticServing:
    def test_declarative_schedule_end_to_end(self, system):
        workload = Workload.poisson("alexnet", num_requests=24, rate_rps=12.0, seed=7)
        schedule = ElasticitySchedule(
            [
                NodeJoin(0.4, "edge-2", provision_s=0.3),
                NodeDrain(1.2, "edge-1"),
                NodeJoin(1.6, "edge-3", provision_s=0.2),
            ]
        )
        report = system.serve(workload, elasticity=schedule, balancer="jsq")
        assert report.num_failed == 0 and report.num_retried == 0
        assert report.scale_up_events == 2
        assert report.scale_down_events == 1
        # Parked replicas must not run anything before provisioning elapses.
        for node, ready_s in (("edge-2", 0.7), ("edge-3", 1.8)):
            assert all(e.start_s >= ready_s for e in compute_events(report, node))
        # The drained replica leaves the fleet and accrues downtime.
        assert report.node_down_s.get("edge-1", 0.0) > 0.0
        # Fleet accounting shows up in the summary.
        assert "scale-up" in report.summary() and "node-hours" in report.summary()
        assert report.node_hours > 0.0
        assert set(report.replica_utilisation()) == set(report.node_busy_s)

    def test_events_are_idempotent_and_drains_respect_the_tier(self):
        system = D3System(
            D3Config(network="wifi", num_edge_nodes=2, use_regression=False,
                     profiler_noise_std=0.0)
        )
        workload = Workload.poisson("alexnet", num_requests=10, rate_rps=6.0, seed=1)
        schedule = ElasticitySchedule(
            [
                # edge-1's first event is a join, so it starts parked.
                NodeDrain(0.05, "edge-0"),  # sole active edge: refused
                NodeJoin(0.1, "edge-1", provision_s=0.2),
                NodeJoin(0.2, "edge-1"),    # already provisioning: no-op
                NodeDrain(0.6, "edge-1"),
                NodeDrain(0.7, "edge-1"),   # already draining or gone: no-op
            ]
        )
        report = system.serve(workload, elasticity=schedule)
        assert report.num_failed == 0
        assert report.scale_up_events == 1
        assert report.scale_down_events == 1
        # The refused drain never took the tier's last replica down.
        assert "edge-0" not in report.node_down_s

    def test_join_cancels_an_inflight_drain(self, system):
        # Saturate the replica group (vgg16 takes ~163 ms per request on an
        # edge replica, arrivals come every 20 ms) so edge-1 provably holds
        # queued work when the drain begins — the drain must stay in flight,
        # and the join then cancels it without the node ever going down.
        workload = Workload.constant_rate("vgg16", num_requests=16, interval_s=0.02)
        schedule = ElasticitySchedule(
            [NodeDrain(0.3, "edge-1"), NodeJoin(0.35, "edge-1")]
        )
        report = system.serve(
            workload, method="edge_only", elasticity=schedule, balancer="rr"
        )
        assert report.num_failed == 0
        assert report.scale_down_events == 1 and report.scale_up_events == 1
        # The cancelled drain never took the node down.
        assert "edge-1" not in report.node_down_s

    def test_drained_source_re_resolves_but_crashed_source_still_fails(
        self, fleet_system
    ):
        """A device leaving the fleet gracefully hands its stream to a
        sibling; a device *crashing* still means the client is offline."""
        devices = [node.name for node in fleet_system.cluster.devices]
        workload = Workload.poisson(
            "alexnet", num_requests=18, rate_rps=9.0, seed=3, sources=devices
        )
        late = [r for r in workload.requests if r.arrival_s > 0.6 and r.source == "device-1"]
        assert late, "scenario needs post-event arrivals pinned to device-1"

        drained = fleet_system.serve(
            workload, elasticity=ElasticitySchedule([NodeDrain(0.6, "device-1")])
        )
        assert drained.num_failed == 0
        by_id = {record.request_id: record for record in drained.records}
        for request in late:
            record = by_id[request.request_id]
            assert record.completed
            used = {e.node for e in record.report.events if e.tier.value == "device"}
            assert "device-1" not in used, "re-resolved request still used the drained device"

        crashed = fleet_system.serve(
            workload, faults=FaultSchedule([NodeDown(0.6, "device-1")])
        )
        crashed_ids = {
            record.request_id for record in crashed.records if not record.completed
        }
        assert {request.request_id for request in late} <= crashed_ids

    def test_summary_surfaces_plan_cache_churn(self, system):
        workload = Workload.poisson("alexnet", num_requests=8, rate_rps=8.0, seed=4)
        report = system.serve(workload)
        assert report.cache_invalidations >= 0
        assert f"invalidations {report.cache_invalidations}" in report.summary()
        assert "cache hits" in report.summary()

    def test_autoscaler_parks_spares_at_low_load(self, system):
        workload = Workload.poisson("alexnet", num_requests=12, rate_rps=3.0, seed=5)
        scaler = Autoscaler(policy="target-util", initial_replicas=1)
        report = system.serve(workload, autoscaler=scaler, balancer="rr")
        assert report.num_failed == 0
        assert report.scale_up_events == 0
        # Spares stayed parked for the whole run: only edge-0 computed.
        for spare in ("edge-1", "edge-2", "edge-3"):
            assert not compute_events(report, spare)
            assert report.node_down_s.get(spare, 0.0) > 0.0
        assert report.node_hours < len(report.node_busy_s) * report.makespan_s / 3600.0

    def test_autoscaler_grows_the_fleet_under_load(self, system):
        workload = Workload.poisson("vgg16", num_requests=20, rate_rps=8.0, seed=6)
        scaler = Autoscaler(
            policy="queue-threshold",
            interval_s=0.2,
            window=1,
            cooldown_s=0.2,
            initial_replicas=1,
            provision_s=0.1,
        )
        report = system.serve(
            workload, method="edge_only", autoscaler=scaler, balancer="jsq"
        )
        assert report.num_failed == 0
        assert report.scale_up_events >= 1
        busy_edges = [
            node
            for node in ("edge-0", "edge-1", "edge-2", "edge-3")
            if compute_events(report, node)
        ]
        assert len(busy_edges) > 1, "scale-ups never spread the load"

    def test_empty_schedule_and_no_balancer_change_nothing(self, system):
        workload = Workload.poisson("alexnet", num_requests=10, rate_rps=8.0, seed=8)
        baseline = system.serve(workload)
        empty = system.serve(workload, elasticity=ElasticitySchedule([]))
        assert serialize_report(empty) == serialize_report(baseline)

    def test_rejects_wrong_schedule_type(self, system):
        workload = Workload.single("alexnet")
        with pytest.raises((TypeError, ValueError)):
            system.serve(workload, elasticity=FaultSchedule([]))


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #
#: Elastic targets exclude edge-0 so the replica group always keeps one
#: member that never parks or drains (a fleet with zero capacity is a
#: misconfiguration, not an engine regime worth pinning).
ELASTIC_TARGETS = ("edge-1", "edge-2", "edge-3")

raw_elastic_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        st.sampled_from(ELASTIC_TARGETS),
        st.booleans(),  # True = join, False = drain
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    ),
    max_size=8,
)

workload_params = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**16),
)


def build_elasticity(raw) -> ElasticitySchedule:
    events = []
    for time_s, target, is_join, provision_s in raw:
        if is_join:
            events.append(NodeJoin(time_s, target, provision_s=provision_s))
        else:
            events.append(NodeDrain(time_s, target))
    return ElasticitySchedule(events)


class TestElasticityProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        raw=raw_elastic_events,
        params=workload_params,
        balancer=st.sampled_from(BALANCER_NAMES),
    )
    def test_elasticity_invariants(self, system, raw, params, balancer):
        """No matter when replicas join or drain:

        * every request completes — drains and parks never abort work, and
          never force a retry;
        * no task starts on an initially-parked replica before its first
          provisioning delay has elapsed;
        * a task starting on a replica after its final drain instant belongs
          to a request that was already in flight when the drain began.
        """
        num_requests, rate_rps, seed = params
        schedule = build_elasticity(raw)
        workload = Workload.poisson(
            "alexnet", num_requests=num_requests, rate_rps=rate_rps, seed=seed
        )
        report = system.serve(workload, elasticity=schedule, balancer=balancer)

        assert report.num_completed == num_requests
        assert report.num_failed == 0
        assert all(record.retries == 0 for record in report.records)

        first_event = {}
        last_event = {}
        for event in schedule.events:
            first_event.setdefault(event.target, event)
            last_event[event.target] = event
        arrivals = {r.request_id: r.arrival_s for r in workload.requests}

        for target in ELASTIC_TARGETS:
            events = [
                (record, event)
                for record in report.records
                for event in record.report.events
                if event.node == target
            ]
            first = first_event.get(target)
            if first is not None and first.is_join:
                # Initially parked: dark until the first join provisions.
                assert all(e.start_s >= first.ready_s - 1e-9 for _, e in events)
            last = last_event.get(target)
            if (
                last is not None
                and not last.is_join
                and report.node_down_s.get(target, 0.0) > 0.0
            ):
                # The final drain completed: anything that started on the
                # replica afterwards was in flight before the drain began.
                for record, event in events:
                    if event.start_s >= last.time_s:
                        assert arrivals[record.request_id] < last.time_s

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(params=workload_params)
    def test_empty_elasticity_is_bit_identical(self, system, params):
        num_requests, rate_rps, seed = params
        workload = Workload.poisson(
            "alexnet", num_requests=num_requests, rate_rps=rate_rps, seed=seed
        )
        baseline = serialize_report(system.serve(workload))
        elastic = serialize_report(
            system.serve(workload, elasticity=ElasticitySchedule([]))
        )
        assert elastic == baseline
