"""Tests for the pluggable serving schedulers (FIFO, batching, EDF) and the
SLO machinery they drive: micro-batch cost, admission control, goodput and
attainment accounting, and the batch-aware PlanEvaluator hooks.
"""

import math
from types import SimpleNamespace

import pytest

from repro.core.d3 import D3Config, D3System
from repro.core.placement import PlacementPlan, PlanEvaluator, Tier
from repro.profiling.hardware import EDGE_DESKTOP, JETSON_NANO, batch_cost_s
from repro.runtime.scheduler import (
    BatchingScheduler,
    DeadlineScheduler,
    FifoScheduler,
    get_scheduler,
    resolve_scheduler,
)
from repro.runtime.workload import Request, Workload
from repro.testing import serialize_report


def make_system(**overrides):
    config = dict(
        network="wifi", num_edge_nodes=4, use_regression=False, profiler_noise_std=0.0
    )
    config.update(overrides)
    return D3System(D3Config(**config))


def overload_workload(slo_ms=500.0, priorities=None, n=40, rate=20.0, seed=2):
    return Workload.poisson(
        "alexnet", num_requests=n, rate_rps=rate, seed=seed,
        slo_ms=slo_ms, priorities=priorities,
    )


# --------------------------------------------------------------------------- #
# The batch cost curve
# --------------------------------------------------------------------------- #
class TestBatchCost:
    def test_singleton_is_solo_cost(self):
        assert batch_cost_s([0.25], 0.85) == 0.25

    def test_never_cheaper_than_longest_member(self):
        for n in (2, 4, 8, 32):
            assert batch_cost_s([0.1] * n, 0.6) >= 0.1

    def test_never_dearer_than_sequential(self):
        for n in (2, 4, 8, 32):
            assert batch_cost_s([0.1] * n, 0.85) <= 0.1 * n + 1e-12

    def test_sublinear_in_batch_size(self):
        per_member = [batch_cost_s([0.1] * n, 0.85) / n for n in (1, 2, 4, 8)]
        assert per_member == sorted(per_member, reverse=True)
        assert per_member[-1] < per_member[0]

    def test_uneven_members_clamped_by_longest(self):
        assert batch_cost_s([1.0, 1e-6, 1e-6], 0.85) >= 1.0

    def test_gpu_batches_better_than_cpu(self):
        assert JETSON_NANO.batch_exponent < EDGE_DESKTOP.batch_exponent
        gpu = batch_cost_s([0.1] * 8, JETSON_NANO.batch_exponent)
        cpu = batch_cost_s([0.1] * 8, EDGE_DESKTOP.batch_exponent)
        assert gpu < cpu

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_cost_s([], 0.85)
        with pytest.raises(ValueError):
            batch_cost_s([0.1], 0.0)
        with pytest.raises(ValueError):
            batch_cost_s([0.1], 1.5)


# --------------------------------------------------------------------------- #
# Registry and construction
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_names_resolve(self):
        assert isinstance(get_scheduler("fifo"), FifoScheduler)
        assert isinstance(get_scheduler("batch"), BatchingScheduler)
        assert isinstance(get_scheduler("edf"), DeadlineScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_scheduler("lifo")

    def test_resolve_spec_forms(self):
        assert isinstance(resolve_scheduler(None), FifoScheduler)
        assert isinstance(resolve_scheduler("edf"), DeadlineScheduler)
        instance = BatchingScheduler(max_batch=2)
        assert resolve_scheduler(instance) is instance
        with pytest.raises(TypeError):
            resolve_scheduler(42)

    def test_batching_parameter_validation(self):
        with pytest.raises(ValueError):
            BatchingScheduler(max_batch=0)
        with pytest.raises(ValueError):
            BatchingScheduler(max_wait_ms=-1.0)

    def test_admission_defaults(self):
        assert not FifoScheduler().admission_control
        assert not BatchingScheduler().admission_control
        assert DeadlineScheduler().admission_control


# --------------------------------------------------------------------------- #
# select() mechanics on a bare queue (no engine involved)
# --------------------------------------------------------------------------- #
class FakeTask(SimpleNamespace):
    """Identity-hashable stand-in for ``_Task`` (tombstone sets require it)."""

    __hash__ = object.__hash__


def fake_task(key, enqueued_s=0.0, label="conv1", graph="g", no_batch=False, tier=Tier.EDGE):
    task = FakeTask(
        enqueued_s=enqueued_s,
        label=label,
        unit=SimpleNamespace(
            tier=tier,
            topo_key=0,
            state=SimpleNamespace(
                no_batch=no_batch,
                request=SimpleNamespace(graph=graph, index=key[0]),
            ),
        ),
    )
    return (key, task)


def fake_node(entries):
    import heapq

    queue = list(entries)
    heapq.heapify(queue)
    return SimpleNamespace(queue=queue, tombstones=set())


class TestSelectMechanics:
    def test_protocol_base_is_abstract(self):
        from repro.runtime.scheduler import Scheduler

        with pytest.raises(NotImplementedError):
            Scheduler().select(fake_node([fake_task((0, 0, 0))]), 0.0)

    def test_batching_holds_below_max_batch(self):
        scheduler = BatchingScheduler(max_batch=4, max_wait_ms=10.0)
        graph = object()
        node = fake_node(
            [fake_task((i, 0, i), enqueued_s=0.0, graph=graph) for i in range(2)]
        )
        tasks, flush_at = scheduler.select(node, 0.001)
        assert tasks == []
        assert flush_at == pytest.approx(0.010)  # oldest member + max_wait
        assert len(node.queue) == 2  # nothing consumed while holding

    def test_batching_flushes_at_deadline(self):
        scheduler = BatchingScheduler(max_batch=4, max_wait_ms=10.0)
        graph = object()
        node = fake_node(
            [fake_task((i, 0, i), enqueued_s=0.0, graph=graph) for i in range(2)]
        )
        tasks, flush_at = scheduler.select(node, 0.011)  # hold expired
        assert flush_at is None
        assert len(tasks) == 2
        assert node.queue == []

    def test_batching_dispatches_full_batch_immediately(self):
        scheduler = BatchingScheduler(max_batch=3, max_wait_ms=10.0)
        graph = object()
        node = fake_node(
            [fake_task((i, 0, i), enqueued_s=0.0, graph=graph) for i in range(5)]
        )
        tasks, flush_at = scheduler.select(node, 0.0)
        assert flush_at is None
        assert len(tasks) == 3  # capped at max_batch
        assert len(node.queue) == 2

    def test_incompatible_work_never_coalesces(self):
        scheduler = BatchingScheduler(max_batch=4, max_wait_ms=0.0)
        graph = object()
        node = fake_node(
            [
                fake_task((0, 0, 0), graph=graph, label="conv1"),
                fake_task((1, 0, 1), graph=graph, label="conv2"),
                fake_task((2, 0, 2), graph=graph, label="conv1"),
            ]
        )
        tasks, _ = scheduler.select(node, 0.0)
        assert [t.label for t in tasks] == ["conv1", "conv1"]
        live = [t.label for _, t in node.queue if t not in node.tombstones]
        assert live == ["conv2"]

    def test_no_batch_head_dispatches_alone(self):
        """A failover retry of a dead batch's member must not re-batch."""
        scheduler = BatchingScheduler(max_batch=4, max_wait_ms=10.0)
        graph = object()
        node = fake_node(
            [
                fake_task((0, 0, 0), graph=graph, no_batch=True),
                fake_task((1, 0, 1), graph=graph),
            ]
        )
        tasks, flush_at = scheduler.select(node, 0.0)
        assert flush_at is None
        assert len(tasks) == 1 and tasks[0].unit.state.no_batch
        assert len(node.queue) == 1

    def test_no_batch_member_excluded_from_others_batches(self):
        scheduler = BatchingScheduler(max_batch=4, max_wait_ms=0.0)
        graph = object()
        node = fake_node(
            [
                fake_task((0, 0, 0), graph=graph),
                fake_task((1, 0, 1), graph=graph, no_batch=True),
                fake_task((2, 0, 2), graph=graph),
            ]
        )
        tasks, _ = scheduler.select(node, 0.0)
        assert len(tasks) == 2
        assert all(not t.unit.state.no_batch for t in tasks)


class TestLazyDeletion:
    """`BatchingScheduler._remove` tombstones instead of re-heapifying."""

    def test_root_members_are_physically_popped(self):
        """Consumed entries at the heap root leave the queue immediately;
        nothing stays tombstoned that is already gone."""
        graph = object()
        entries = [fake_task((i, 0, i), graph=graph) for i in range(3)]
        node = fake_node(entries)
        BatchingScheduler._remove(node, [entries[0][1], entries[1][1]])
        assert [key for key, _ in node.queue] == [(2, 0, 2)]
        assert node.tombstones == set()

    def test_buried_members_are_tombstoned_not_scanned(self):
        """A consumed member buried under a live root is marked, not removed —
        O(batch) bookkeeping instead of an O(queue) rebuild."""
        graph = object()
        entries = [fake_task((i, 0, i), graph=graph) for i in range(5)]
        node = fake_node(entries)
        buried = entries[3][1]
        BatchingScheduler._remove(node, [buried])
        assert buried in node.tombstones
        assert len(node.queue) == 5  # physically still present
        live = [t for _, t in node.queue if t not in node.tombstones]
        assert buried not in live and len(live) == 4

    def test_compaction_when_tombstones_dominate(self):
        """Once tombstones outnumber the live half the queue compacts outright,
        bounding both memory and future scan costs."""
        graph = object()
        entries = [fake_task((i, 0, i), graph=graph) for i in range(8)]
        node = fake_node(entries)
        # Consume most of the buried entries (root stays live so nothing pops).
        consumed = [entries[i][1] for i in (2, 3, 4, 5, 6)]
        BatchingScheduler._remove(node, consumed)
        assert node.tombstones == set()  # compaction cleared the marks
        assert sorted(key for key, _ in node.queue) == [(0, 0, 0), (1, 0, 1), (7, 0, 7)]
        # The compacted queue is still a valid heap: selects drain in order.
        scheduler = BatchingScheduler(max_batch=8, max_wait_ms=0.0)
        tasks, _ = scheduler.select(node, 0.0)
        assert len(tasks) == 3

    def test_tombstoned_work_never_rebatches(self):
        """An entry consumed by an earlier batch must not join a later one
        while awaiting physical deletion."""
        scheduler = BatchingScheduler(max_batch=2, max_wait_ms=0.0)
        graph = object()
        entries = [fake_task((i, 0, i), graph=graph) for i in range(4)]
        node = fake_node(entries)
        first, _ = scheduler.select(node, 0.0)
        second, _ = scheduler.select(node, 0.0)
        labels = {id(t) for t in first} & {id(t) for t in second}
        assert labels == set()  # no overlap between consecutive batches
        assert len(first) == 2 and len(second) == 2

    def test_max_batch_one_degenerates_to_fifo(self):
        scheduler = BatchingScheduler(max_batch=1, max_wait_ms=10.0)
        graph = object()
        node = fake_node(
            [fake_task((i, 0, i), graph=graph) for i in range(3)]
        )
        tasks, flush_at = scheduler.select(node, 0.0)
        assert flush_at is None and len(tasks) == 1


# --------------------------------------------------------------------------- #
# FIFO: the default must be the old engine, exactly
# --------------------------------------------------------------------------- #
class TestFifoEquivalence:
    def test_explicit_fifo_bit_identical_to_default(self):
        workload = Workload.poisson("alexnet", num_requests=20, rate_rps=15.0, seed=4)
        default = make_system().serve(workload)
        explicit = make_system().serve(workload, scheduler="fifo")
        assert serialize_report(default) == serialize_report(explicit)

    def test_slo_fields_alone_do_not_change_the_schedule(self):
        plain = Workload.poisson("alexnet", num_requests=20, rate_rps=15.0, seed=4)
        tagged = plain.with_slo(250.0, priority=1)
        a = make_system().serve(plain)
        b = make_system().serve(tagged)
        assert [r.completion_s for r in a.records] == [r.completion_s for r in b.records]
        assert b.num_rejected == 0  # FIFO has no admission control


# --------------------------------------------------------------------------- #
# Batching
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def batched_overload():
    """device_only under deep overload: the compute-bound batching regime."""
    workload = overload_workload()
    fifo = make_system().serve(workload, method="device_only", scheduler="fifo")
    batch = make_system().serve(workload, method="device_only", scheduler="batch")
    return fifo, batch


class TestBatchingScheduler:
    def test_batches_actually_form(self, batched_overload):
        _, batch = batched_overload
        assert batch.scheduler == "batch"
        assert batch.batches, "no micro-batches formed under deep overload"
        assert batch.mean_batch_occupancy > 1.5

    def test_throughput_strictly_improves_over_fifo(self, batched_overload):
        fifo, batch = batched_overload
        assert batch.throughput_rps > fifo.throughput_rps * 1.1

    def test_batch_cost_bounds(self, batched_overload):
        _, batch = batched_overload
        for record in batch.batches:
            assert record.duration_s >= record.longest_solo_s - 1e-12
            assert record.duration_s <= record.total_solo_s + 1e-12

    def test_max_batch_respected(self):
        workload = overload_workload()
        report = make_system().serve(
            workload, method="device_only", scheduler=BatchingScheduler(max_batch=3)
        )
        assert report.batch_occupancy
        assert max(report.batch_occupancy) <= 3

    def test_zero_wait_still_serves_everything(self):
        workload = overload_workload()
        report = make_system().serve(
            workload,
            method="device_only",
            scheduler=BatchingScheduler(max_batch=4, max_wait_ms=0.0),
        )
        assert report.num_completed == len(workload)

    def test_every_request_terminates_exactly_once(self, batched_overload):
        _, batch = batched_overload
        assert len(batch.records) == 40
        assert len({r.request_id for r in batch.records}) == 40
        for record in batch.records:
            assert record.status in ("completed", "failed", "rejected")

    def test_members_share_the_batch_interval(self, batched_overload):
        """Batched timeline events carry a batch label and identical spans."""
        _, batch = batched_overload
        spans = {}
        for record in batch.records:
            for event in record.report.events:
                if event.label.startswith("batch["):
                    spans.setdefault((event.node, event.start_s), set()).add(event.end_s)
        assert spans, "expected batch-labelled events"
        for ends in spans.values():
            assert len(ends) == 1


# --------------------------------------------------------------------------- #
# EDF and admission control
# --------------------------------------------------------------------------- #
class TestDeadlineScheduler:
    def test_queue_key_orders_by_class_then_deadline(self):
        scheduler = DeadlineScheduler()

        def key(priority, arrival, slo_ms, index, seq):
            task = SimpleNamespace(
                unit=SimpleNamespace(
                    topo_key=0,
                    state=SimpleNamespace(
                        request=SimpleNamespace(
                            priority=priority, arrival_s=arrival,
                            slo_ms=slo_ms, index=index,
                        )
                    ),
                )
            )
            return scheduler.queue_key(task, seq)

        urgent = key(0, 0.0, 50.0, 1, 1)
        relaxed = key(0, 0.0, 500.0, 0, 0)
        background = key(1, 0.0, 10.0, 2, 2)
        best_effort = key(0, 0.0, None, 3, 3)
        assert urgent < relaxed < best_effort  # within class 0: by deadline
        assert best_effort < background  # class 0 always precedes class 1
        assert best_effort[1] == math.inf

    def test_same_class_deadlines_never_invert(self):
        """Among same-class keys, sort order follows deadlines exactly."""
        scheduler = DeadlineScheduler()
        keys = []
        for seq, slo in enumerate((300.0, 80.0, 150.0, None, 40.0)):
            task = SimpleNamespace(
                unit=SimpleNamespace(
                    topo_key=0,
                    state=SimpleNamespace(
                        request=SimpleNamespace(
                            priority=0, arrival_s=0.1 * seq, slo_ms=slo, index=seq
                        )
                    ),
                )
            )
            keys.append(scheduler.queue_key(task, seq))
        deadlines = [key[1] for key in sorted(keys)]
        assert deadlines == sorted(deadlines)

    def test_admission_sheds_under_overload(self):
        workload = overload_workload()
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        assert report.scheduler == "edf"
        assert report.num_rejected > 0
        assert report.num_rejected + report.num_completed + report.num_failed == 40

    def test_shed_requests_never_execute(self):
        workload = overload_workload()
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        for record in report.records:
            if record.rejected:
                assert record.report.events == []
                assert record.report.transfers == []
                assert record.completion_s == record.arrival_s

    def test_attainment_beats_fifo_under_overload(self):
        workload = overload_workload()
        fifo = make_system().serve(workload, method="device_only", scheduler="fifo")
        edf = make_system().serve(workload, method="device_only", scheduler="edf")
        assert edf.slo_attainment > fifo.slo_attainment
        assert edf.goodput_rps > fifo.goodput_rps

    def test_survivors_meet_their_slo(self):
        workload = overload_workload()
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        met = [r for r in report.records if r.met_slo]
        assert met
        for record in met:
            assert record.latency_s <= record.slo_ms / 1e3 + 1e-9

    def test_priority_classes_protected(self):
        workload = overload_workload(priorities=(0, 1), n=40, rate=20.0)
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        per_class = report.class_percentiles()
        if 0 in per_class and 1 in per_class:
            assert per_class[0]["p95"] <= per_class[1]["p95"] + 1e-9

    def test_no_slo_means_no_shedding(self):
        workload = overload_workload(slo_ms=None)
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        assert report.num_rejected == 0
        assert report.num_completed == 40


# --------------------------------------------------------------------------- #
# Report metrics
# --------------------------------------------------------------------------- #
class TestSloMetrics:
    def test_goodput_attainment_consistency(self):
        workload = overload_workload()
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        assert report.num_met_slo <= report.num_completed
        assert report.slo_attainment == pytest.approx(
            report.num_met_slo / report.num_requests
        )
        assert report.goodput_rps == pytest.approx(
            report.num_met_slo / report.makespan_s
        )
        assert report.goodput_rps <= report.throughput_rps + 1e-9

    def test_rejections_leave_availability_semantics(self):
        workload = overload_workload()
        report = make_system().serve(workload, method="device_only", scheduler="edf")
        admitted = report.num_requests - report.num_rejected
        assert report.availability == pytest.approx(report.num_completed / admitted)

    def test_summary_mentions_slo_and_batching(self):
        workload = overload_workload(priorities=(0, 1))
        report = make_system().serve(workload, method="device_only", scheduler="batch")
        text = report.summary()
        assert "goodput" in text
        assert "batching:" in text
        assert "[batch]" in text

    def test_empty_report_defaults(self):
        from repro.runtime.serving import ServingReport

        report = ServingReport(workload_name="empty")
        assert report.slo_attainment == 1.0
        assert report.goodput_rps == 0.0
        assert report.mean_batch_occupancy == 0.0
        assert report.class_percentiles() == {}


# --------------------------------------------------------------------------- #
# Workload SLO plumbing
# --------------------------------------------------------------------------- #
class TestWorkloadSlo:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(index=0, model="alexnet", arrival_s=0.0, slo_ms=0.0)
        with pytest.raises(ValueError):
            Request(index=0, model="alexnet", arrival_s=0.0, priority=-1)

    def test_constructors_apply_slo_and_classes(self):
        workload = Workload.constant_rate(
            "alexnet", num_requests=4, interval_s=0.1, slo_ms=100.0, priorities=(0, 2)
        )
        assert [r.slo_ms for r in workload] == [100.0] * 4
        assert [r.priority for r in workload] == [0, 2, 0, 2]

    def test_with_slo_rewrites_stream(self):
        workload = Workload.poisson("alexnet", num_requests=5, rate_rps=2.0, seed=0)
        tagged = workload.with_slo(80.0, priority=1)
        assert [r.slo_ms for r in tagged] == [80.0] * 5
        assert all(r.priority == 1 for r in tagged)
        assert [r.arrival_s for r in tagged] == [r.arrival_s for r in workload]

    def test_merge_preserves_slo_fields(self):
        premium = Workload.poisson(
            "alexnet", num_requests=3, rate_rps=2.0, seed=0, slo_ms=50.0
        )
        background = Workload.poisson(
            "alexnet", num_requests=3, rate_rps=2.0, seed=1, priorities=(2,)
        )
        merged = Workload.merge(premium, background)
        assert sorted(r.slo_ms for r in merged if r.slo_ms) == [50.0] * 3
        assert sum(1 for r in merged if r.priority == 2) == 3


# --------------------------------------------------------------------------- #
# Batch-aware PlanEvaluator hooks
# --------------------------------------------------------------------------- #
class TestBatchedEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, alexnet, alexnet_profile, wifi):
        return PlanEvaluator(alexnet_profile, wifi)

    @pytest.fixture(scope="class")
    def plan(self, alexnet):
        return PlacementPlan.single_tier(alexnet, Tier.EDGE)

    def test_batch_one_is_the_plain_objective(self, evaluator, plan):
        assert evaluator.batched_objective(plan, 1) == pytest.approx(
            evaluator.objective(plan)
        )

    def test_per_request_compute_amortizes(self, evaluator, plan):
        costs = [evaluator.batched_objective(plan, n) for n in (1, 2, 4, 8)]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_vertex_hook_consistent(self, evaluator, alexnet):
        vertex = next(iter(alexnet))
        solo = evaluator.vertex_latency(vertex, Tier.EDGE)
        assert evaluator.batched_vertex_latency(vertex, Tier.EDGE, 1) == solo
        amortized = evaluator.batched_vertex_latency(vertex, Tier.EDGE, 4)
        assert amortized < solo
        assert amortized * 4 >= solo  # the batch still costs at least one solo

    def test_tier_exponents_respected(self, evaluator, plan):
        cpu = evaluator.batched_objective(plan, 8, {Tier.EDGE: 0.85})
        gpu = evaluator.batched_objective(plan, 8, {Tier.EDGE: 0.6})
        assert gpu < cpu

    def test_batch_size_validation(self, evaluator, alexnet):
        vertex = next(iter(alexnet))
        with pytest.raises(ValueError):
            evaluator.batched_vertex_latency(vertex, Tier.EDGE, 0)
