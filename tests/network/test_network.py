"""Tests for network links and the Table III conditions."""

import pytest

from repro.network.conditions import (
    BandwidthTrace,
    NETWORK_CONDITIONS,
    NetworkCondition,
    TABLE_III_UPLINK_MBPS,
    get_condition,
    list_conditions,
)
from repro.network.link import NetworkLink, transfer_seconds


class TestTransferSeconds:
    def test_basic_conversion(self):
        # 1 MB over 8 Mbps = 1 second.
        assert transfer_seconds(1_000_000, 8.0) == pytest.approx(1.0)

    def test_zero_payload(self):
        assert transfer_seconds(0, 10.0) == 0.0

    def test_latency_added(self):
        assert transfer_seconds(1_000_000, 8.0, latency_s=0.05) == pytest.approx(1.05)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, 10.0)
        with pytest.raises(ValueError):
            transfer_seconds(1, 0.0)


class TestNetworkLink:
    def test_transfer(self):
        link = NetworkLink("device", "edge", bandwidth_mbps=80.0)
        assert link.transfer_seconds(10_000_000) == pytest.approx(1.0)

    def test_with_bandwidth(self):
        link = NetworkLink("edge", "cloud", 30.0).with_bandwidth(60.0)
        assert link.bandwidth_mbps == 60.0

    def test_key_is_symmetric(self):
        assert NetworkLink("device", "edge", 1.0).key == NetworkLink("edge", "device", 1.0).key

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            NetworkLink("a", "b", 0.0)


class TestTableIIIConditions:
    def test_all_four_conditions_exist(self):
        assert list_conditions() == ["wifi", "4g", "5g", "optical"]
        assert set(NETWORK_CONDITIONS) == set(list_conditions())

    @pytest.mark.parametrize("name", ["wifi", "4g", "5g", "optical"])
    def test_rates_match_table_iii(self, name):
        condition = get_condition(name)
        rates = TABLE_III_UPLINK_MBPS[name]
        assert condition.device_edge_mbps == rates["device-edge"]
        assert condition.edge_cloud_mbps == rates["edge-cloud"]
        assert condition.device_cloud_mbps == rates["device-cloud"]

    def test_lan_faster_than_backbone(self):
        for name in list_conditions():
            condition = get_condition(name)
            assert condition.device_edge_mbps > condition.edge_cloud_mbps
            assert condition.edge_cloud_mbps >= condition.device_cloud_mbps

    def test_bandwidth_lookup_symmetric(self):
        condition = get_condition("wifi")
        assert condition.bandwidth_mbps("device", "edge") == condition.bandwidth_mbps("edge", "device")

    def test_same_tier_transfer_is_free(self):
        condition = get_condition("wifi")
        assert condition.bandwidth_mbps("edge", "edge") == float("inf")
        assert condition.transfer_seconds(10**9, "edge", "edge") == 0.0

    def test_unknown_condition_raises(self):
        with pytest.raises(KeyError):
            get_condition("carrier-pigeon")

    def test_alias_lookup(self):
        assert get_condition("Optical Network").name == "optical"

    def test_with_backbone_mbps(self):
        swept = get_condition("wifi").with_backbone_mbps(50.0)
        assert swept.edge_cloud_mbps == 50.0
        assert swept.device_cloud_mbps == 50.0
        assert swept.device_edge_mbps == get_condition("wifi").device_edge_mbps

    def test_scaled_backbone(self):
        scaled = get_condition("wifi").scaled_backbone(0.5)
        assert scaled.edge_cloud_mbps == pytest.approx(31.53 * 0.5)
        with pytest.raises(ValueError):
            get_condition("wifi").scaled_backbone(0)

    def test_condition_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            NetworkCondition("bad", 0.0, 1.0, 1.0)


class TestBandwidthTrace:
    def test_piecewise_lookup(self):
        trace = BandwidthTrace(get_condition("wifi"), [(0.0, 1.0), (10.0, 0.5), (20.0, 1.0)])
        assert trace.multiplier_at(5.0) == 1.0
        assert trace.multiplier_at(15.0) == 0.5
        assert trace.multiplier_at(25.0) == 1.0

    def test_condition_at(self):
        trace = BandwidthTrace(get_condition("wifi"), [(0.0, 0.5)])
        assert trace.condition_at(1.0).edge_cloud_mbps == pytest.approx(31.53 * 0.5)

    def test_before_first_timestamp_returns_base_multiplier(self):
        # Regression: a trace starting mid-run used to extrapolate its first
        # sample backwards in time; before the first timestamp the base
        # condition is undisturbed, so the multiplier must be 1.0.
        trace = BandwidthTrace(get_condition("wifi"), [(5.0, 0.5), (10.0, 0.25)])
        assert trace.multiplier_at(0.0) == 1.0
        assert trace.multiplier_at(4.999) == 1.0
        assert trace.condition_at(2.0).edge_cloud_mbps == pytest.approx(31.53)

    def test_before_first_timestamp_baseless_returns_first_rate(self):
        # Without a base the samples are absolute Mbps; there is no "x1.0"
        # to fall back to, so the first declared rate is the best estimate.
        trace = BandwidthTrace(base=None, samples=[(5.0, 40.0), (10.0, 20.0)])
        assert trace.sample_at(0.0) == 40.0
        assert trace.sample_at(7.5) == 40.0

    def test_boundary_timestamp_is_inclusive(self):
        trace = BandwidthTrace(get_condition("wifi"), [(5.0, 0.5)])
        assert trace.multiplier_at(5.0) == 0.5
        assert trace.multiplier_at(4.999) == 1.0

    def test_rejects_unordered_samples(self):
        with pytest.raises(ValueError):
            BandwidthTrace(get_condition("wifi"), [(10.0, 1.0), (0.0, 0.5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BandwidthTrace(get_condition("wifi"), [])
