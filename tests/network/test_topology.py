"""Tests for the declarative topology API: presets, validation, routing, JSON."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.network.conditions import BandwidthTrace, get_condition
from repro.network.topology import (
    DEFAULT_TIER_PRICES,
    InsufficientMemoryError,
    LinkSpec,
    NodeSpec,
    Topology,
    TopologyError,
    get_topology,
    hardware_from_json,
    hardware_to_json,
    list_topologies,
    load_topology,
)
from repro.profiling.hardware import (
    CLOUD_SERVER,
    EDGE_DESKTOP,
    EnergyModel,
    HardwareSpec,
    RASPBERRY_PI_4,
)


def _chain_topology(edge_cloud=None):
    """A small explicit topology: device -> relay -> edge -> cloud."""
    return Topology(
        "chain",
        nodes=[
            NodeSpec("d0", "device", RASPBERRY_PI_4),
            NodeSpec("gw", "relay"),
            NodeSpec("e0", "edge", EDGE_DESKTOP),
            NodeSpec("c0", "cloud", CLOUD_SERVER),
        ],
        links=[
            LinkSpec("uplink", "d0", "gw", 50.0),
            LinkSpec("trunk", "gw", "e0", 100.0),
            LinkSpec("backbone", "e0", "c0", edge_cloud or 25.0),
        ],
    )


class TestPresets:
    def test_registry_lists_all_presets(self):
        assert list_topologies() == [
            "three_tier",
            "multi_device",
            "hetero_edge",
            "device_gateway",
        ]

    def test_three_tier_matches_canonical_testbed(self):
        topology = Topology.three_tier(num_edge_nodes=4, network="wifi")
        assert [n.name for n in topology.nodes_of_tier("edge")] == [
            "edge-0",
            "edge-1",
            "edge-2",
            "edge-3",
        ]
        assert set(topology.links) == {"device-edge", "edge-cloud", "device-cloud"}
        assert all(link.is_inherited for link in topology.links.values())
        # The planning view of an all-inherited topology IS the base condition.
        assert topology.planning_condition() is get_condition("wifi")

    def test_multi_device_owns_per_device_wires(self):
        topology = get_topology("multi_device", num_devices=3)
        assert len(topology.nodes_of_tier("device")) == 3
        assert "device-2-lan" in topology.links and "device-2-cloud" in topology.links

    def test_hetero_edge_scales_hardware(self):
        topology = get_topology("hetero_edge", speed_factors=(1.0, 0.5))
        edges = topology.nodes_of_tier("edge")
        assert edges[0].hardware.cpu_gflops == EDGE_DESKTOP.cpu_gflops
        assert edges[1].hardware.cpu_gflops == pytest.approx(EDGE_DESKTOP.cpu_gflops * 0.5)

    def test_device_gateway_is_multi_hop(self):
        topology = get_topology("device_gateway")
        hops = topology.route("device-0", "cloud-0")
        assert hops == ["device-gateway", "gateway-edge", "edge-cloud"]

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_topology("does_not_exist")
        with pytest.raises(KeyError):
            load_topology("also_not_a_preset_or_file")


class TestValidation:
    def test_dangling_link_endpoint(self):
        with pytest.raises(TopologyError, match="dangling"):
            Topology(
                "bad",
                nodes=[
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("e0", "edge", EDGE_DESKTOP),
                    NodeSpec("c0", "cloud", CLOUD_SERVER),
                ],
                links=[
                    LinkSpec("lan", "d0", "e0", 50.0),
                    LinkSpec("bb", "e0", "c0", 20.0),
                    LinkSpec("ghost", "d0", "no-such-node", 10.0),
                ],
            )

    def test_unreachable_cloud(self):
        with pytest.raises(TopologyError, match="unreachable"):
            Topology(
                "island",
                nodes=[
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("e0", "edge", EDGE_DESKTOP),
                    NodeSpec("c0", "cloud", CLOUD_SERVER),
                ],
                links=[LinkSpec("lan", "d0", "e0", 50.0)],  # cloud has no wire
            )

    def test_zero_bandwidth_link(self):
        with pytest.raises(TopologyError, match="non-positive"):
            LinkSpec("dead", "a", "b", 0.0)

    def test_missing_tier(self):
        with pytest.raises(TopologyError, match="at least one cloud"):
            Topology(
                "no-cloud",
                nodes=[
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("e0", "edge", EDGE_DESKTOP),
                ],
                links=[LinkSpec("lan", "d0", "e0", 50.0)],
            )

    def test_compute_node_requires_hardware(self):
        with pytest.raises(TopologyError, match="hardware"):
            NodeSpec("e0", "edge")

    def test_memory_feasibility_rejects_oversized_models(self):
        topology = Topology(
            "tiny",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", 50.0),
                LinkSpec("bb", "e0", "c0", 20.0),
            ],
        )
        roomiest = max(
            node.hardware.memory_gb for node in topology.nodes.values()
        )
        fits = int(roomiest * 1024**3) - 1
        topology.validate(min_model_bytes=fits)  # roomiest node holds it
        with pytest.raises(InsufficientMemoryError, match="roomiest"):
            topology.validate(min_model_bytes=fits + 2)
        # The typed error is still a TopologyError for broad handlers.
        assert issubclass(InsufficientMemoryError, TopologyError)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="itself"):
            LinkSpec("loop", "d0", "d0", 10.0)

    def test_inherited_link_needs_compute_tier_pair(self):
        with pytest.raises(TopologyError, match="inherits"):
            Topology(
                "bad-inherit",
                nodes=[
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("gw", "relay"),
                    NodeSpec("e0", "edge", EDGE_DESKTOP),
                    NodeSpec("c0", "cloud", CLOUD_SERVER),
                ],
                links=[
                    LinkSpec("uplink", "d0", "gw"),  # inherit over a relay hop
                    LinkSpec("trunk", "gw", "e0", 100.0),
                    LinkSpec("bb", "e0", "c0", 20.0),
                ],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError, match="duplicate node"):
            Topology(
                "dup",
                nodes=[
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("d0", "device", RASPBERRY_PI_4),
                    NodeSpec("e0", "edge", EDGE_DESKTOP),
                    NodeSpec("c0", "cloud", CLOUD_SERVER),
                ],
                links=[],
            )


class TestRoutingAndPlanning:
    def test_route_is_deterministic_and_cached(self):
        topology = _chain_topology()
        assert topology.route("d0", "c0") == ["uplink", "trunk", "backbone"]
        assert topology.route("d0", "c0") is topology.route("d0", "c0")

    def test_route_same_node_is_empty(self):
        assert _chain_topology().route("d0", "d0") == []

    def test_planning_condition_harmonic_rates(self):
        topology = _chain_topology()
        condition = topology.planning_condition()
        # device->edge: 50 and 100 Mbps in series.
        assert condition.device_edge_mbps == pytest.approx(1.0 / (1 / 50 + 1 / 100))
        # device->cloud adds the 25 Mbps backbone hop.
        assert condition.device_cloud_mbps == pytest.approx(
            1.0 / (1 / 50 + 1 / 100 + 1 / 25)
        )
        assert condition.edge_cloud_mbps == pytest.approx(25.0)

    def test_traced_link_moves_the_planning_view(self):
        topology = _chain_topology(
            edge_cloud=BandwidthTrace(samples=[(0.0, 25.0), (10.0, 5.0)])
        )
        before = topology.planning_condition(at_s=0.0)
        after = topology.planning_condition(at_s=12.0)
        assert before.edge_cloud_mbps == pytest.approx(25.0)
        assert after.edge_cloud_mbps == pytest.approx(5.0)

    def test_inherited_link_without_base_raises(self):
        topology = Topology(
            "no-base",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "device", "edge"),
                LinkSpec("bb", "edge", "cloud"),
                LinkSpec("up", "device", "cloud"),
            ],
        )
        with pytest.raises(TopologyError, match="no base"):
            topology.planning_condition()


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", ["three_tier", "multi_device", "hetero_edge", "device_gateway"])
    def test_presets_round_trip(self, name):
        topology = get_topology(name, network="4g")
        clone = Topology.from_json(topology.to_json())
        assert clone == topology  # fingerprint equality
        assert clone.base_network == topology.base_network

    def test_trace_and_custom_hardware_round_trip(self):
        custom = EDGE_DESKTOP.scaled(0.5)
        topology = Topology(
            "custom",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", custom),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", 42.0),
                LinkSpec(
                    "bb", "e0", "c0", BandwidthTrace(samples=[(0.0, 30.0), (5.0, 10.0)])
                ),
                LinkSpec("up", "d0", "c0", 11.5),
            ],
        )
        clone = Topology.from_json(topology.to_json())
        assert clone == topology
        assert clone.nodes["e0"].hardware == custom
        assert isinstance(clone.links["bb"].bandwidth, BandwidthTrace)

    def test_load_topology_from_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        topology = get_topology("multi_device", num_devices=2)
        path.write_text(topology.to_json())
        loaded = load_topology(str(path))
        assert loaded == topology

    def test_invalid_json_rejected(self):
        with pytest.raises(TopologyError, match="invalid topology JSON"):
            Topology.from_json("{not json")

    def test_fingerprint_distinguishes_shapes(self):
        a = Topology.three_tier(num_edge_nodes=2)
        b = Topology.three_tier(num_edge_nodes=3)
        c = get_topology("hetero_edge", speed_factors=(1.0, 0.5))
        assert a.fingerprint() != b.fingerprint() != c.fingerprint()
        assert a.fingerprint() == Topology.three_tier(num_edge_nodes=2).fingerprint()


class TestBandwidthTraceValidation:
    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BandwidthTrace(samples=[(0.0, 1.0), (1.0, 2.0), (1.0, 3.0)])

    def test_unordered_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            BandwidthTrace(samples=[(2.0, 1.0), (1.0, 2.0)])

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BandwidthTrace(samples=[(0.0, 0.0)])

    def test_condition_at_requires_base(self):
        trace = BandwidthTrace(samples=[(0.0, 10.0)])
        with pytest.raises(ValueError, match="no base"):
            trace.condition_at(0.0)
        assert trace.sample_at(5.0) == 10.0

    def test_sample_before_first_timestamp(self):
        trace = BandwidthTrace(samples=[(5.0, 2.0), (10.0, 3.0)])
        assert trace.sample_at(0.0) == 2.0
        assert trace.sample_at(7.0) == 2.0
        assert trace.sample_at(10.0) == 3.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
            unique_by=lambda sample: sample[0],
        )
    )
    def test_sample_at_round_trips_every_timestamp(self, samples):
        """Sampling at each timestamp recovers exactly the declared value."""
        samples = sorted(samples)
        trace = BandwidthTrace(samples=samples)
        for time_s, value in samples:
            assert trace.sample_at(time_s) == value
        # Between two timestamps the earlier value holds (piecewise-constant).
        for (t0, v0), (t1, _) in zip(samples, samples[1:]):
            midpoint = t0 + (t1 - t0) / 2.0
            if t0 < midpoint < t1:
                assert trace.sample_at(midpoint) == v0


class TestHardwareSerialization:
    """The lossy-serialization bug this PR fixes: the old round-trip rebuilt
    HardwareSpec from an explicit field list, silently dropping any field not
    on the list.  The codec is now driven by ``dataclasses.fields`` and pinned
    by a hypothesis round-trip property, so a future field cannot regress."""

    finite = {"allow_nan": False, "allow_infinity": False}

    @given(
        cpu=st.floats(min_value=1e-3, max_value=1e5, **finite),
        gpu=st.floats(min_value=0.0, max_value=1e6, **finite),
        bandwidth=st.floats(min_value=1e-3, max_value=1e4, **finite),
        memory=st.floats(min_value=1e-3, max_value=1e4, **finite),
        overhead=st.floats(min_value=0.0, max_value=1e-2, **finite),
        jpf=st.floats(min_value=0.0, max_value=1e-6, **finite),
        radio=st.floats(min_value=0.0, max_value=1e-3, **finite),
        idle=st.floats(min_value=0.0, max_value=1e3, **finite),
    )
    def test_round_trip_is_lossless(
        self, cpu, gpu, bandwidth, memory, overhead, jpf, radio, idle
    ):
        spec = HardwareSpec(
            name="prop",
            cpu_gflops=cpu,
            gpu_gflops=gpu,
            memory_bandwidth_gbps=bandwidth,
            memory_gb=memory,
            per_layer_overhead_s=overhead,
            energy=EnergyModel(
                joules_per_flop=jpf,
                radio_joules_per_byte=radio,
                idle_watts=idle,
            ),
        )
        assert hardware_from_json(hardware_to_json(spec)) == spec

    def test_round_trip_covers_every_declared_field(self):
        """No HardwareSpec field may be absent from the serialized form
        (non-default values only: the unmetered energy default is implied)."""
        spec = RASPBERRY_PI_4
        payload = hardware_to_json(spec)
        declared = {spec_field.name for spec_field in dataclasses.fields(HardwareSpec)}
        assert set(payload) == declared  # RASPBERRY_PI_4 meters energy

    def test_unmetered_energy_is_omitted(self):
        """Pre-energy documents must stay byte-stable."""
        bare = HardwareSpec(
            "bare", cpu_gflops=1, gpu_gflops=0, memory_bandwidth_gbps=1, memory_gb=1
        )
        payload = hardware_to_json(bare)
        assert "energy" not in payload
        assert hardware_from_json(payload) == bare

    def test_unknown_keys_rejected(self):
        with pytest.raises(TopologyError, match="unknown hardware field"):
            hardware_from_json({"cpu_gflops": 1.0, "cpu_gflop": 2.0})
        with pytest.raises(TopologyError, match="unknown energy field"):
            hardware_from_json(
                {
                    "cpu_gflops": 1.0,
                    "gpu_gflops": 0.0,
                    "memory_bandwidth_gbps": 1.0,
                    "memory_gb": 1.0,
                    "energy": {"idle_wats": 3.0},
                }
            )

    def test_preset_energy_survives_topology_round_trip(self):
        topology = Topology.three_tier(num_edge_nodes=2)
        clone = Topology.from_json(topology.to_json())
        for name, node in topology.nodes.items():
            assert clone.nodes[name].hardware == node.hardware
            if node.hardware is not None:
                assert clone.nodes[name].hardware.energy == node.hardware.energy


class TestNodePricing:
    def test_tier_defaults_resolve(self):
        topology = Topology.three_tier(num_edge_nodes=1)
        assert topology.tier_price_per_s("device") == DEFAULT_TIER_PRICES["device"]
        assert topology.tier_price_per_s("edge") == DEFAULT_TIER_PRICES["edge"]
        assert topology.tier_price_per_s("cloud") == DEFAULT_TIER_PRICES["cloud"]

    def test_explicit_price_round_trips(self):
        topology = Topology(
            "priced",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("e0", "edge", EDGE_DESKTOP, price_per_s=1.5e-5),
                NodeSpec("c0", "cloud", CLOUD_SERVER, price_per_s=2.2e-3),
            ],
            links=[
                LinkSpec("lan", "d0", "e0", 42.0),
                LinkSpec("bb", "e0", "c0", 30.0),
                LinkSpec("up", "d0", "c0", 11.5),
            ],
        )
        clone = Topology.from_json(topology.to_json())
        assert clone == topology
        assert clone.nodes["e0"].price_per_s == 1.5e-5
        assert clone.nodes["e0"].resolved_price_per_s == 1.5e-5
        # Undeclared prices fall back to the tier default.
        assert clone.nodes["d0"].price_per_s is None
        assert clone.nodes["d0"].resolved_price_per_s == DEFAULT_TIER_PRICES["device"]

    def test_negative_price_rejected(self):
        with pytest.raises(TopologyError, match="price_per_s"):
            NodeSpec("e0", "edge", EDGE_DESKTOP, price_per_s=-1.0)

    def test_price_changes_fingerprint(self):
        base = Topology.three_tier(num_edge_nodes=1)
        priced = Topology(
            base.name,
            nodes=[
                dataclasses.replace(node, price_per_s=5e-5)
                if node.tier == "edge"
                else node
                for node in base.nodes.values()
            ],
            links=list(base.links.values()),
            base_network=base.base_network,
        )
        assert priced != base
