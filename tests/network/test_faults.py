"""Tests for the declarative fault-injection layer: events, schedules, JSON,
seeded chaos generation, and the topology failure masking they drive."""

import pytest

from repro.network.faults import (
    FaultEvent,
    FaultSchedule,
    FaultScheduleError,
    LinkDown,
    LinkUp,
    NodeDown,
    NodeUp,
    load_fault_schedule,
)
from repro.network.topology import (
    RouteUnavailableError,
    Topology,
    TopologyError,
    get_topology,
)


class TestFaultEvents:
    def test_event_kinds(self):
        assert NodeDown(1.0, "edge-0").kind == "node_down"
        assert NodeUp(1.0, "edge-0").kind == "node_up"
        assert LinkDown(1.0, "edge-cloud").kind == "link_down"
        assert LinkUp(1.0, "edge-cloud").kind == "link_up"

    def test_negative_time_rejected(self):
        with pytest.raises(FaultScheduleError):
            NodeDown(-0.5, "edge-0")

    def test_empty_target_rejected(self):
        with pytest.raises(FaultScheduleError):
            LinkDown(1.0, "")

    def test_abstract_base_not_schedulable(self):
        with pytest.raises(FaultScheduleError):
            FaultEvent(1.0, "edge-0")

    def test_failure_and_node_flags(self):
        assert NodeDown(0.0, "n").is_failure and NodeDown(0.0, "n").is_node_event
        assert not NodeUp(0.0, "n").is_failure
        assert not LinkDown(0.0, "l").is_node_event


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([NodeUp(5.0, "e"), NodeDown(1.0, "e")])
        assert [event.time_s for event in schedule] == [1.0, 5.0]

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule([])
        assert FaultSchedule([NodeDown(1.0, "e")])

    def test_state_at_transitions(self):
        schedule = FaultSchedule(
            [
                NodeDown(1.0, "edge-0"),
                LinkDown(2.0, "edge-cloud"),
                NodeUp(3.0, "edge-0"),
                LinkUp(4.0, "edge-cloud"),
            ]
        )
        assert schedule.state_at(0.5) == (frozenset(), frozenset())
        # events scheduled exactly at t are already applied
        assert schedule.state_at(1.0) == (frozenset({"edge-0"}), frozenset())
        assert schedule.state_at(2.5) == (frozenset({"edge-0"}), frozenset({"edge-cloud"}))
        assert schedule.state_at(3.5) == (frozenset(), frozenset({"edge-cloud"}))
        assert schedule.state_at(10.0) == (frozenset(), frozenset())

    def test_state_at_is_idempotent_for_repeated_downs(self):
        schedule = FaultSchedule(
            [NodeDown(1.0, "e"), NodeDown(2.0, "e"), NodeUp(3.0, "e")]
        )
        assert schedule.state_at(2.5) == (frozenset({"e"}), frozenset())
        assert schedule.state_at(3.0) == (frozenset(), frozenset())

    def test_validate_against_topology(self):
        topology = get_topology("three_tier", num_edge_nodes=2)
        FaultSchedule([NodeDown(1.0, "edge-1")]).validate_against(topology)
        with pytest.raises(FaultScheduleError, match="unknown node"):
            FaultSchedule([NodeDown(1.0, "edge-9")]).validate_against(topology)
        with pytest.raises(FaultScheduleError, match="unknown link"):
            FaultSchedule([LinkDown(1.0, "wormhole")]).validate_against(topology)

    def test_json_round_trip(self):
        schedule = FaultSchedule(
            [NodeDown(1.5, "edge-0"), LinkDown(2.0, "edge-cloud"), NodeUp(3.25, "edge-0")],
            name="outage",
        )
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert restored.name == "outage"

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(FaultScheduleError, match="unknown fault kind"):
            FaultSchedule.from_json(
                {"events": [{"at": 1.0, "kind": "meteor", "target": "edge-0"}]}
            )

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.from_json("{not json")
        with pytest.raises(FaultScheduleError):
            FaultSchedule.from_json("[1, 2]")


class TestChaos:
    def test_same_seed_same_schedule(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        first = FaultSchedule.chaos(topology, seed=3, horizon_s=60.0)
        second = FaultSchedule.chaos(topology, seed=3, horizon_s=60.0)
        assert first == second
        assert len(first) > 0

    def test_different_seeds_differ(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        assert FaultSchedule.chaos(topology, seed=0, horizon_s=60.0) != FaultSchedule.chaos(
            topology, seed=1, horizon_s=60.0
        )

    def test_targets_default_to_edge_tier(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        schedule = FaultSchedule.chaos(topology, seed=1, horizon_s=120.0)
        targets = {event.target for event in schedule}
        assert targets <= {f"edge-{i}" for i in range(4)}
        schedule.validate_against(topology)

    def test_every_down_has_matching_up(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        schedule = FaultSchedule.chaos(topology, seed=2, horizon_s=120.0)
        downs = sum(1 for event in schedule if event.is_failure)
        ups = len(schedule) - downs
        assert downs == ups
        # after the final event everything is healthy again
        assert schedule.state_at(float("inf")) == (frozenset(), frozenset())

    def test_crashes_stay_within_horizon(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        schedule = FaultSchedule.chaos(topology, seed=5, horizon_s=30.0)
        assert all(e.time_s < 30.0 for e in schedule if e.is_failure)

    def test_link_chaos_opt_in(self):
        topology = get_topology("three_tier", num_edge_nodes=2)
        schedule = FaultSchedule.chaos(
            topology, seed=4, horizon_s=200.0, tier_mtbf_s={}, link_mtbf_s=20.0
        )
        assert schedule
        assert all(not event.is_node_event for event in schedule)

    def test_invalid_rates_rejected(self):
        topology = get_topology("three_tier")
        with pytest.raises(FaultScheduleError):
            FaultSchedule.chaos(topology, horizon_s=0.0)
        with pytest.raises(FaultScheduleError):
            FaultSchedule.chaos(topology, horizon_s=10.0, mttr_s=0.0)
        with pytest.raises(FaultScheduleError):
            FaultSchedule.chaos(topology, horizon_s=10.0, tier_mtbf_s={"edge": -1.0})


class TestLoadFaultSchedule:
    def test_passthrough(self):
        schedule = FaultSchedule([NodeDown(1.0, "edge-0")])
        assert load_fault_schedule(schedule) is schedule

    def test_chaos_spec(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        schedule = load_fault_schedule("chaos:9", topology=topology, horizon_s=60.0)
        assert schedule.name == "chaos:9"
        assert schedule == FaultSchedule.chaos(topology, seed=9, horizon_s=60.0)

    def test_chaos_needs_topology(self):
        with pytest.raises(FaultScheduleError, match="topology"):
            load_fault_schedule("chaos:1")

    def test_chaos_bad_seed(self):
        with pytest.raises(FaultScheduleError, match="chaos"):
            load_fault_schedule("chaos:banana", topology=get_topology("three_tier"))

    def test_json_file(self, tmp_path):
        schedule = FaultSchedule([NodeDown(1.0, "edge-0"), NodeUp(2.0, "edge-0")])
        path = tmp_path / "faults.json"
        path.write_text(schedule.to_json())
        assert load_fault_schedule(str(path)) == schedule

    def test_json_file_validated_against_topology(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(FaultSchedule([NodeDown(1.0, "edge-7")]).to_json())
        with pytest.raises(FaultScheduleError, match="unknown node"):
            load_fault_schedule(str(path), topology=get_topology("three_tier"))

    def test_unknown_spec(self):
        with pytest.raises(FaultScheduleError, match="unknown fault schedule"):
            load_fault_schedule("definitely/not/a/file.json")


class TestTopologyMasking:
    def test_masked_drops_down_node_and_keys_differently(self):
        topology = get_topology("three_tier", num_edge_nodes=4)
        masked = topology.masked(frozenset({"edge-0"}), frozenset())
        assert "edge-0" not in masked.nodes
        assert len(masked.nodes_of_tier("edge")) == 3
        assert masked.fingerprint() != topology.fingerprint()

    def test_masked_noop_returns_self(self):
        topology = get_topology("three_tier")
        assert topology.masked(frozenset(), frozenset()) is topology

    def test_masked_drops_links_naming_down_nodes(self):
        topology = get_topology("multi_device", num_devices=2)
        masked = topology.masked(frozenset({"device-1"}), frozenset())
        assert "device-1-lan" not in masked.links
        assert "device-1-cloud" not in masked.links
        assert "device-0-lan" in masked.links

    def test_masked_whole_tier_down_raises(self):
        topology = get_topology("three_tier", num_edge_nodes=2)
        with pytest.raises(TopologyError):
            topology.masked(frozenset({"edge-0", "edge-1"}), frozenset())

    def test_masked_severed_cloud_raises(self):
        topology = get_topology("three_tier")
        with pytest.raises(TopologyError):
            topology.masked(frozenset(), frozenset({"edge-cloud", "device-cloud"}))

    def test_route_detours_around_down_link(self):
        topology = get_topology("three_tier")
        assert topology.route("device-0", "edge-0") == ["device-edge"]
        detour = topology.route(
            "device-0", "edge-0", down_links=frozenset({"device-edge"})
        )
        assert detour == ["device-cloud", "edge-cloud"]

    def test_route_avoids_down_relay(self):
        topology = get_topology("device_gateway")
        assert topology.route("device-0", "edge-0") == ["device-gateway", "gateway-edge"]
        with pytest.raises(RouteUnavailableError):
            topology.route("device-0", "edge-0", down_nodes=frozenset({"gateway-0"}))

    def test_route_unavailable_when_severed(self):
        topology = get_topology("multi_device", num_devices=2)
        with pytest.raises(RouteUnavailableError):
            topology.route(
                "device-0",
                "cloud-0",
                down_links=frozenset({"device-0-lan", "device-0-cloud"}),
            )

    def test_route_unavailable_is_a_topology_error(self):
        assert issubclass(RouteUnavailableError, TopologyError)

    def test_route_down_endpoint(self):
        topology = get_topology("three_tier")
        with pytest.raises(RouteUnavailableError):
            topology.route("device-0", "edge-0", down_nodes=frozenset({"edge-0"}))

    def test_masked_routes_do_not_pollute_healthy_cache(self):
        topology = get_topology("three_tier")
        topology.route("device-0", "edge-0", down_links=frozenset({"device-edge"}))
        assert topology.route("device-0", "edge-0") == ["device-edge"]


class TestUnreadableSchedules:
    def test_directory_as_schedule_fails_cleanly(self, tmp_path):
        with pytest.raises(FaultScheduleError, match="cannot read"):
            load_fault_schedule(str(tmp_path))
