"""Tests for the comparator systems (single-tier, Neurosurgeon, DADS)."""

import pytest

from repro.baselines.dads import DadsPartitioner
from repro.baselines.neurosurgeon import ChainTopologyError, NeurosurgeonPartitioner
from repro.baselines.single_tier import SingleTierBaseline, single_tier_plan
from repro.core.placement import PlanEvaluator, Tier
from repro.network.conditions import get_condition


class TestSingleTier:
    def test_all_latencies(self, alexnet, alexnet_profile, wifi):
        baseline = SingleTierBaseline(alexnet_profile, wifi)
        latencies = baseline.all_latencies_s(alexnet)
        assert set(latencies) == set(Tier)
        assert latencies[Tier.DEVICE] > latencies[Tier.EDGE]

    def test_cloud_only_dominated_by_transfer_under_4g(self, alexnet, alexnet_profile):
        baseline = SingleTierBaseline(alexnet_profile, get_condition("4g"))
        metrics = baseline.metrics(alexnet, Tier.CLOUD)
        assert metrics.transfer_latency_s > metrics.total_compute_latency_s

    def test_plan_helper(self, alexnet):
        plan = single_tier_plan(alexnet, Tier.EDGE)
        plan.validate()


class TestNeurosurgeon:
    def test_rejects_dag_models(self, resnet18, resnet_profile, wifi):
        partitioner = NeurosurgeonPartitioner(resnet_profile, wifi)
        assert not partitioner.supports(resnet18)
        with pytest.raises(ChainTopologyError):
            partitioner.partition(resnet18)

    def test_split_is_optimal_over_candidates(self, alexnet, alexnet_profile, wifi):
        partitioner = NeurosurgeonPartitioner(alexnet_profile, wifi)
        result = partitioner.partition(alexnet)
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        for _, plan in partitioner.candidate_plans(alexnet):
            assert result.latency_s <= evaluator.metrics(plan).end_to_end_latency_s + 1e-12

    def test_plan_uses_only_device_and_cloud(self, alexnet, alexnet_profile, wifi):
        result = NeurosurgeonPartitioner(alexnet_profile, wifi).partition(alexnet)
        tiers = set(result.plan.assignments.values())
        assert Tier.EDGE not in tiers

    def test_not_better_than_best_single_tier_pair(self, alexnet, alexnet_profile, wifi):
        """The split can only improve on running everything on either endpoint."""
        result = NeurosurgeonPartitioner(alexnet_profile, wifi).partition(alexnet)
        single = SingleTierBaseline(alexnet_profile, wifi)
        assert result.latency_s <= single.latency_s(alexnet, Tier.DEVICE) + 1e-12
        assert result.latency_s <= single.latency_s(alexnet, Tier.CLOUD) + 1e-12

    def test_split_moves_with_bandwidth(self, alexnet, alexnet_profile):
        """A faster backbone can only move the split earlier (more offloading)."""
        slow = NeurosurgeonPartitioner(alexnet_profile, get_condition("4g")).partition(alexnet)
        fast = NeurosurgeonPartitioner(alexnet_profile, get_condition("optical")).partition(alexnet)
        assert fast.split_index <= slow.split_index

    def test_same_tiers_rejected(self, alexnet_profile, wifi):
        with pytest.raises(ValueError):
            NeurosurgeonPartitioner(alexnet_profile, wifi, Tier.CLOUD, Tier.CLOUD)


class TestDads:
    def test_partition_is_valid_two_way_split(self, resnet18, resnet_profile, wifi):
        result = DadsPartitioner(resnet_profile, wifi).partition(resnet18)
        result.plan.validate()
        assert Tier.DEVICE not in {
            result.plan.tier_of(v.index) for v in resnet18 if v.index != 0
        }

    def test_handles_chain_and_dag(self, alexnet, alexnet_profile, resnet18, resnet_profile, wifi):
        DadsPartitioner(alexnet_profile, wifi).partition(alexnet)
        DadsPartitioner(resnet_profile, wifi).partition(resnet18)

    def test_cut_value_positive(self, resnet18, resnet_profile, wifi):
        result = DadsPartitioner(resnet_profile, wifi).partition(resnet18)
        assert result.cut_value_s > 0

    def test_not_worse_than_edge_or_cloud_only_by_much(self, resnet18, resnet_profile, wifi):
        """The min-cut optimises processing + transfer; it should be at least as
        good as either trivial two-way solution under its own cost model."""
        result = DadsPartitioner(resnet_profile, wifi).partition(resnet18)
        single = SingleTierBaseline(resnet_profile, wifi)
        best_trivial = min(
            single.latency_s(resnet18, Tier.EDGE), single.latency_s(resnet18, Tier.CLOUD)
        )
        assert result.latency_s <= best_trivial * 1.1

    def test_slow_backbone_keeps_more_on_edge(self, small_inception, clean_profiler,
                                              cluster_one_edge):
        profile = clean_profiler.build_profile_from_measurements(
            small_inception, cluster_one_edge.tier_hardware(), repeats=1
        )
        slow = DadsPartitioner(profile, get_condition("4g")).partition(small_inception)
        fast = DadsPartitioner(profile, get_condition("optical")).partition(small_inception)
        assert len(slow.cloud_vertices) <= len(fast.cloud_vertices) + len(small_inception) * 0.2
