"""Tests for the plan cache: hit/miss accounting and invalidation-on-drift."""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.plan_cache import CachedPlan, PlanCache, PlanKey, network_key
from repro.network.conditions import BandwidthTrace, get_condition
from repro.runtime.workload import Workload


@pytest.fixture()
def system():
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=2,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


class TestPlanKey:
    def test_network_key_distinguishes_conditions(self):
        assert network_key(get_condition("wifi")) != network_key(get_condition("4g"))

    def test_same_condition_same_key(self):
        config_key = ("anything",)
        first = PlanKey.build("vgg16", get_condition("wifi"), config_key)
        second = PlanKey.build("vgg16", get_condition("wifi"), config_key)
        assert first == second and hash(first) == hash(second)


class TestCacheAccounting:
    def test_static_stream_partitions_once(self, system):
        workload = Workload.constant_rate("alexnet", num_requests=10, interval_s=0.05)
        report = system.serve(workload)
        assert report.cache_misses == 1
        assert report.cache_hits == 9
        assert report.repartitions == 0
        assert report.plans_computed == 1

    def test_cache_survives_across_serve_calls(self, system):
        system.serve(Workload.single("alexnet"))
        report = system.serve(Workload.constant_rate("alexnet", 5, interval_s=1.0))
        assert report.cache_misses == 0
        assert report.cache_hits == 5

    def test_distinct_models_partition_separately(self, system):
        workload = Workload.constant_rate(["alexnet", "resnet18"], 6, interval_s=0.5)
        report = system.serve(workload)
        assert report.cache_misses == 2
        assert report.cache_hits == 4

    def test_in_band_drift_is_a_hit(self, system):
        """A condition inside the threshold band reuses the cached plan."""
        trace = BandwidthTrace(
            base=get_condition("wifi"), samples=[(0.0, 1.0), (0.9, 1.1)]
        )
        workload = Workload.constant_rate("alexnet", num_requests=4, interval_s=0.6)
        report = system.serve(workload, trace=trace)
        assert report.cache_misses == 1
        assert report.repartitions == 0
        assert report.cache_hits == 3

    def test_out_of_band_drift_repartitions_once(self, system):
        """A drift beyond the band triggers exactly one local re-partitioning."""
        trace = BandwidthTrace(
            base=get_condition("wifi"), samples=[(0.0, 1.0), (0.9, 0.2)]
        )
        workload = Workload.constant_rate("alexnet", num_requests=6, interval_s=0.6)
        report = system.serve(workload, trace=trace)
        assert report.cache_misses == 1
        assert report.repartitions == 1
        assert report.cache_hits == 4
        assert system.plan_cache.invalidations == 1


class TestInvalidationHook:
    def test_repartitioner_listener_invalidates_entry(self, system, alexnet):
        """The cache entry dies the moment its repartitioner adapts the plan."""
        cache = system.plan_cache
        condition = get_condition("wifi")
        entry = system._plan_for(alexnet, condition)
        key = entry.key
        assert cache.get(key) is entry  # a hit while valid

        congested = condition.scaled_backbone(0.1)
        entry.repartitioner.observe(network=congested)
        assert not entry.valid
        assert cache.get(key) is None
        assert cache.invalidations == 1

    def test_direct_listener_api(self, alexnet, alexnet_profile):
        events = []
        repartitioner = DynamicRepartitioner(
            alexnet, alexnet_profile, get_condition("wifi")
        )
        repartitioner.add_listener(events.append)
        repartitioner.observe(network=get_condition("wifi").scaled_backbone(0.1))
        assert len(events) == 1 and events[0].triggered

    def test_within_band_observation_does_not_fire(self, alexnet, alexnet_profile):
        events = []
        repartitioner = DynamicRepartitioner(
            alexnet, alexnet_profile, get_condition("wifi")
        )
        repartitioner.add_listener(events.append)
        repartitioner.observe(network=get_condition("wifi").scaled_backbone(1.05))
        assert events == []


class TestRegressions:
    def test_same_named_graphs_do_not_collide(self, system):
        """Two structurally different graphs sharing a name get separate plans."""
        from repro.graph.builder import GraphBuilder
        from repro.runtime.workload import Request, Workload

        def tiny(num_convs):
            builder = GraphBuilder("dnn", input_shape=(3, 32, 32))
            for i in range(num_convs):
                builder.conv(f"c{i}", 8, kernel=3, padding=1)
            builder.flatten("flat")
            builder.linear("fc", 10)
            return builder.build()

        workload = Workload(
            requests=[
                Request(0, "dnn", 0.0, graph=tiny(2)),
                Request(1, "dnn", 0.1, graph=tiny(7)),
            ]
        )
        report = system.serve(workload)  # used to raise PlacementError
        assert report.cache_misses == 2
        assert report.num_requests == 2

    def test_thresholds_propagate_to_live_repartitioners(self, system):
        """Tightening the band mid-life must reach existing repartitioners,
        so every counted repartition is a real adaptation (matching
        invalidation), never a phantom one."""
        system.serve(Workload.single("alexnet"))
        trace = BandwidthTrace(base=get_condition("wifi"), samples=[(0.0, 0.85)])
        report = system.serve(
            Workload.single("alexnet"),
            trace=trace,
            thresholds=RepartitionThresholds(lower=0.9, upper=1.1),
        )
        cache = system.plan_cache
        assert report.repartitions == cache.invalidations
        entry = cache.latest_for(*list(cache._latest)[0])
        assert entry.repartitioner.thresholds == cache.thresholds

    def test_listeners_do_not_accumulate_across_drifts(self, system, alexnet):
        """Repeated drift adaptations must not grow the repartitioner's
        listener list or leave invalid alias entries behind."""
        condition = get_condition("wifi")
        entry = system._plan_for(alexnet, condition)
        repartitioner = entry.repartitioner
        for step in range(1, 6):
            factor = 0.3 if step % 2 else 1.0
            entry = system._plan_for(alexnet, condition.scaled_backbone(factor))
        assert len(repartitioner._listeners) == 1  # only the live entry's hook
        cache = system.plan_cache
        assert all(e.valid for e in cache._entries.values())


class TestCacheUnit:
    def test_invalidate_and_clear(self, system, alexnet):
        cache = system.plan_cache
        entry = system._plan_for(alexnet, get_condition("wifi"))
        assert len(cache) == 1
        assert cache.invalidate(entry.key)
        assert not cache.invalidate(entry.key)  # already gone
        cache.clear()
        assert len(cache) == 0

    def test_within_band_uses_thresholds(self, system, alexnet):
        cache = system.plan_cache
        cache.thresholds = RepartitionThresholds(lower=0.5, upper=2.0)
        entry = system._plan_for(alexnet, get_condition("wifi"))
        assert cache.within_band(entry, get_condition("wifi").scaled_backbone(0.6))
        assert not cache.within_band(entry, get_condition("wifi").scaled_backbone(0.3))

    def test_cached_plan_is_a_frozen_snapshot(self, system, alexnet):
        """Adapting to drift must not mutate plans already handed out."""
        entry = system._plan_for(alexnet, get_condition("wifi"))
        before = dict(entry.placement.assignments)
        entry.repartitioner.observe(network=get_condition("wifi").scaled_backbone(0.05))
        assert entry.placement.assignments == before


class TestTopologyKeying:
    def test_plan_key_distinguishes_topologies(self):
        from repro.network.topology import Topology, get_topology

        config_key = ("cfg",)
        condition = get_condition("wifi")
        canonical = Topology.three_tier(num_edge_nodes=4).fingerprint()
        hetero = get_topology("hetero_edge").fingerprint()
        key_a = PlanKey.build("vgg16", condition, config_key, "hpa_vsm", topology=canonical)
        key_b = PlanKey.build("vgg16", condition, config_key, "hpa_vsm", topology=hetero)
        assert key_a != key_b
        # Identical shapes rebuilt from scratch share the key.
        same = Topology.three_tier(num_edge_nodes=4).fingerprint()
        assert key_a == PlanKey.build("vgg16", condition, config_key, "hpa_vsm", topology=same)

    def test_topology_change_is_a_cache_miss(self, system, alexnet):
        """Swapping only the deployment shape must never reuse a cached plan."""
        cache = system.plan_cache
        entry = system._plan_for(alexnet, get_condition("wifi"))
        hits_before = cache.stats()["hits"]
        foreign = PlanKey(
            model=entry.key.model,
            network=entry.key.network,
            config=entry.key.config,
            strategy=entry.key.strategy,
            topology=("some", "other", "shape"),
        )
        assert cache.get(foreign) is None
        assert cache.latest_for(
            entry.key.model, entry.key.strategy, entry.key.config, foreign.topology
        ) is None
        # The native key still hits.
        assert cache.get(entry.key) is entry
        assert cache.stats()["hits"] == hits_before + 1


class TestLRUEviction:
    """The bounded cache: max_entries LRU eviction (degraded topology
    fingerprints and drifting conditions mint unbounded key streams)."""

    def _entry_for(self, system, condition):
        from repro.models.zoo import build_model

        return system._plan_for(system.graph_for("alexnet"), condition)

    def test_unbounded_by_default(self, system):
        assert system.plan_cache.max_entries is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_eviction_keeps_bound(self):
        from repro.graph.builder import GraphBuilder

        system = D3System(
            D3Config(
                network="wifi",
                num_edge_nodes=2,
                use_regression=False,
                profiler_noise_std=0.0,
                plan_cache_entries=2,
            )
        )
        cache = system.plan_cache

        def tiny(name):
            builder = GraphBuilder(name, input_shape=(3, 32, 32))
            builder.conv("c0", 8, kernel=3, padding=1)
            builder.flatten("flat")
            builder.linear("fc", 10)
            return builder.build()

        # three distinct models -> three distinct key streams
        for name in ("net-a", "net-b", "net-c"):
            system._plan_for(tiny(name), system.network)
        assert len(cache) <= 2
        assert cache.evictions >= 1
        assert cache.stats()["evictions"] == cache.evictions

    def test_oldest_key_evicted_first(self):
        cache = PlanCache(max_entries=2)
        entries = {}
        for name in ("a", "b", "c"):
            key = PlanKey(model=name, network=(1.0, 1.0, 1.0), config=())
            entry = CachedPlan(
                key=key,
                graph=None,
                profile=None,
                placement=None,
                vsm_plan=None,
                condition=get_condition("wifi"),
                ideal_latency_s=0.0,
            )
            entries[name] = entry
            cache.store(entry)
        assert cache.get(entries["a"].key) is None  # evicted
        assert cache.get(entries["b"].key) is entries["b"]
        assert cache.get(entries["c"].key) is entries["c"]
        assert cache.evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = PlanCache(max_entries=2)

        def store(name):
            key = PlanKey(model=name, network=(1.0, 1.0, 1.0), config=())
            entry = CachedPlan(
                key=key,
                graph=None,
                profile=None,
                placement=None,
                vsm_plan=None,
                condition=get_condition("wifi"),
                ideal_latency_s=0.0,
            )
            cache.store(entry)
            return entry

        first = store("a")
        store("b")
        assert cache.get(first.key) is first  # refresh "a"
        store("c")  # evicts "b", the least recently used
        assert cache.get(first.key) is first
        assert cache.get(PlanKey(model="b", network=(1.0, 1.0, 1.0), config=())) is None

    def test_evicted_stream_seed_still_adapts(self):
        """Eviction drops keys, not streams: the _latest drift seed survives,
        so a re-request of an evicted shape re-aliases instead of replanning
        from scratch when still in band."""
        system = D3System(
            D3Config(
                network="wifi",
                num_edge_nodes=2,
                use_regression=False,
                profiler_noise_std=0.0,
                plan_cache_entries=1,
            )
        )
        cache = system.plan_cache
        wifi = get_condition("wifi")
        entry = self._entry_for(system, wifi)
        # a second, far-off condition evicts the wifi key
        self._entry_for(system, wifi.scaled_backbone(50.0))
        assert cache.get(entry.key) is None
        misses_before = cache.misses
        again = self._entry_for(system, wifi)
        # replanned or re-aliased, but never silently wrong
        assert again.condition.bandwidth_mbps("edge", "cloud") == pytest.approx(
            wifi.bandwidth_mbps("edge", "cloud"), rel=0.5
        ) or cache.misses > misses_before

    def test_latest_seeds_share_the_bound(self):
        cache = PlanCache(max_entries=2)
        for name in ("a", "b", "c", "d"):
            key = PlanKey(model=name, network=(1.0, 1.0, 1.0), config=())
            cache.store(
                CachedPlan(
                    key=key,
                    graph=None,
                    profile=None,
                    placement=None,
                    vsm_plan=None,
                    condition=get_condition("wifi"),
                    ideal_latency_s=0.0,
                )
            )
        assert len(cache._latest) <= 2
        assert cache.latest_for("d", "hpa_vsm", ()) is not None
        assert cache.latest_for("a", "hpa_vsm", ()) is None  # seed evicted
