"""Conformance suite for the unified :class:`PartitionStrategy` API.

Every registered strategy is run through the same contract: its plan must be
valid for the cluster, its predicted metrics must match the
:class:`PlanEvaluator`, ``serve()`` must complete a small Poisson workload
with it, and unsupported graphs must be declined via ``supports()`` rather
than by raising from ``plan()`` unannounced.
"""

import pytest

from repro.baselines.neurosurgeon import NeurosurgeonPartitioner
from repro.core.d3 import D3Config, D3System
from repro.core.placement import PlanEvaluator
from repro.core.strategy import (
    ClusterSpec,
    HpaStrategy,
    PartitionPlan,
    PartitionStrategy,
    StrategyUnsupportedError,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runners import METHODS, ScenarioRunner
from repro.network.conditions import get_condition
from repro.runtime.executor import DistributedExecutor
from repro.runtime.workload import Workload

ALL_STRATEGIES = available_strategies()


def _serving_system(num_edge_nodes: int = 2) -> D3System:
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=num_edge_nodes,
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert set(METHODS) <= set(ALL_STRATEGIES)

    def test_get_strategy_returns_conforming_instances(self):
        for name in ALL_STRATEGIES:
            strategy = get_strategy(name)
            assert strategy.name == name
            assert isinstance(strategy, PartitionStrategy)
            assert isinstance(strategy.supports_repartitioning, bool)
            assert isinstance(strategy.measure_by_simulation, bool)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(UnknownStrategyError, match="hpa_vsm"):
            get_strategy("definitely_not_a_method")

    def test_registration_requires_a_name(self):
        with pytest.raises(ValueError):
            register_strategy(lambda: None)

    def test_custom_strategy_is_resolvable(self):
        class EdgePinned(HpaStrategy):
            name = "test_edge_pinned"

        register_strategy(EdgePinned)
        try:
            assert "test_edge_pinned" in available_strategies()
            assert get_strategy("test_edge_pinned").name == "test_edge_pinned"
        finally:
            from repro.core import strategy as strategy_module

            del strategy_module._REGISTRY["test_edge_pinned"]


# --------------------------------------------------------------------------- #
# Planning contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_STRATEGIES)
class TestPlanningContract:
    def test_plan_is_valid_for_the_cluster(self, name, alexnet, alexnet_profile, wifi):
        strategy = get_strategy(name)
        assert strategy.supports(alexnet)  # every method handles a chain
        plan = strategy.plan(alexnet, alexnet_profile, wifi, ClusterSpec(num_edge_nodes=4))
        assert isinstance(plan, PartitionPlan)
        assert plan.strategy == name
        assert plan.placement.is_complete()
        plan.placement.validate()

    def test_predicted_metrics_match_plan_evaluator(self, name, alexnet, alexnet_profile, wifi):
        plan = get_strategy(name).plan(alexnet, alexnet_profile, wifi, ClusterSpec(4))
        recomputed = PlanEvaluator(alexnet_profile, wifi).metrics(plan.placement)
        assert plan.metrics == recomputed
        assert plan.latency_s == recomputed.end_to_end_latency_s
        assert plan.bytes_to_cloud == recomputed.bytes_to_cloud

    def test_plan_executes_on_a_real_cluster(
        self, name, alexnet, alexnet_profile, cluster_four_edge
    ):
        plan = get_strategy(name).plan(
            alexnet, alexnet_profile, cluster_four_edge.network, ClusterSpec(4)
        )
        report = DistributedExecutor.from_partition_plan(
            plan, alexnet_profile, cluster_four_edge
        ).execute()
        assert report.end_to_end_latency_s > 0

    def test_unsupported_graphs_are_declined_not_raised(
        self, name, resnet18, resnet_profile, wifi
    ):
        strategy = get_strategy(name)
        if strategy.supports(resnet18):
            plan = strategy.plan(resnet18, resnet_profile, wifi, ClusterSpec(4))
            plan.placement.validate()
        else:
            with pytest.raises(StrategyUnsupportedError):
                strategy.plan(resnet18, resnet_profile, wifi, ClusterSpec(4))


# --------------------------------------------------------------------------- #
# Serving contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_STRATEGIES)
class TestServingContract:
    def test_serve_completes_a_poisson_workload(self, name):
        system = _serving_system()
        workload = Workload.poisson("alexnet", num_requests=6, rate_rps=4.0, seed=3)
        report = system.serve(workload, method=name)
        assert report.num_requests == 6
        assert report.method == name
        assert report.cache_misses == 1
        assert report.cache_hits == 5
        assert all(record.latency_s > 0 for record in report.records)

    def test_single_request_latency_matches_one_shot_run(self, name):
        """An idle serving stream reproduces the one-shot executor latency."""
        system = _serving_system(num_edge_nodes=4)
        report = system.serve(Workload.single("alexnet"), method=name)
        one_shot = system.run(system.graph_for("alexnet"), method=name)
        assert report.records[0].latency_s == pytest.approx(
            one_shot.end_to_end_latency_s, rel=1e-9
        )


class TestCustomStrategyServing:
    def test_serve_uses_the_custom_plan_not_hpa(self):
        """A registered non-HPA method is served with its own placements,
        even when it (wrongly) claims local re-partitioning support."""
        from repro.core import strategy as strategy_module
        from repro.core.placement import PlacementPlan, Tier

        class CloudPinned:
            name = "test_cloud_pinned"
            supports_repartitioning = True
            measure_by_simulation = False

            def supports(self, graph):
                return True

            def plan(self, graph, profile, network, cluster_spec=None):
                placement = PlacementPlan.single_tier(graph, Tier.CLOUD)
                metrics = PlanEvaluator(profile, network).metrics(placement)
                return PartitionPlan(self.name, graph, placement, metrics)

        register_strategy(CloudPinned)
        try:
            system = _serving_system()
            report = system.serve(Workload.single("alexnet"), method="test_cloud_pinned")
            entry = next(iter(system.plan_cache._entries.values()))
            counts = entry.placement.tier_counts()
            assert counts[Tier.CLOUD] == len(entry.graph) - 1  # all but the input
            one_shot = system.run(system.graph_for("alexnet"), method="test_cloud_pinned")
            assert report.records[0].latency_s == pytest.approx(
                one_shot.end_to_end_latency_s, rel=1e-9
            )
        finally:
            del strategy_module._REGISTRY["test_cloud_pinned"]


class TestServingUnavailability:
    def test_serve_unsupported_graph_raises_typed_error(self):
        system = _serving_system()
        with pytest.raises(StrategyUnsupportedError, match="neurosurgeon"):
            system.serve(Workload.single("resnet18"), method="neurosurgeon")

    def test_mixed_stream_fails_on_the_unsupported_model_only(self):
        system = _serving_system()
        ok = system.serve(Workload.single("alexnet"), method="neurosurgeon")
        assert ok.num_requests == 1
        with pytest.raises(StrategyUnsupportedError):
            system.serve(
                Workload.constant_rate(["alexnet", "resnet18"], 2, interval_s=0.1),
                method="neurosurgeon",
            )


# --------------------------------------------------------------------------- #
# Acceptance: serving a baseline matches its bespoke one-shot result
# --------------------------------------------------------------------------- #
class TestNeurosurgeonServingAcceptance:
    def test_serve_latency_matches_partitioner_result(self, wifi):
        system = _serving_system()
        graph = system.graph_for("alexnet")
        profile = system.build_profile(graph)
        expected = NeurosurgeonPartitioner(profile, wifi).partition(graph).latency_s

        report = system.serve(Workload.single("alexnet"), method="neurosurgeon")
        assert report.records[0].latency_s == pytest.approx(expected, rel=1e-6)

    def test_drift_replans_non_adaptive_method(self, wifi):
        """Out-of-band drift re-plans from scratch instead of erroring."""
        from repro.network.conditions import BandwidthTrace

        system = _serving_system()
        trace = BandwidthTrace(base=wifi, samples=[(0.0, 1.0), (0.9, 0.2)])
        workload = Workload.constant_rate("alexnet", num_requests=4, interval_s=0.6)
        report = system.serve(workload, trace=trace, method="dads")
        assert report.num_requests == 4
        assert report.cache_misses == 1
        assert report.repartitions == 1
        assert system.plan_cache.invalidations == 1


# --------------------------------------------------------------------------- #
# The scenario runner is a thin loop over the registry
# --------------------------------------------------------------------------- #
class TestScenarioRunnerUsesRegistry:
    @pytest.fixture(scope="class")
    def scenario(self):
        runner = ScenarioRunner(ExperimentConfig.small())
        return runner.run("resnet18", "wifi")

    def test_every_method_has_a_cell(self, scenario):
        assert set(scenario.latency_s) == set(METHODS)
        assert set(scenario.bytes_to_cloud) == set(METHODS)

    def test_unsupported_method_yields_none_cells(self, scenario):
        assert scenario.latency_s["neurosurgeon"] is None
        assert scenario.bytes_to_cloud["neurosurgeon"] is None

    def test_supported_methods_yield_values(self, scenario):
        for method in METHODS:
            if method == "neurosurgeon":
                continue
            assert scenario.latency_s[method] is not None

    def test_run_rejects_unsupported_method(self, resnet18):
        system = D3System(
            D3Config(network="wifi", use_regression=False, profiler_noise_std=0.0)
        )
        with pytest.raises(StrategyUnsupportedError):
            system.run(resnet18, method="neurosurgeon")


# --------------------------------------------------------------------------- #
# ExperimentConfig.build_graphs memoization (satellite)
# --------------------------------------------------------------------------- #
class TestBuildGraphsMemo:
    def test_graphs_are_cached_per_config_instance(self):
        config = ExperimentConfig.small()
        first = config.build_graphs()
        assert first is config.build_graphs()
        assert set(first) == set(config.models)

    def test_changing_models_invalidates_the_memo(self):
        config = ExperimentConfig.small()
        first = config.build_graphs()
        config.models = ["alexnet"]
        second = config.build_graphs()
        assert second is not first
        assert set(second) == {"alexnet"}
