"""Losslessness of VSM fused-tile execution (unit + property-based).

The central correctness claim of the paper's VSM is that tiled execution is
*lossless*: merging the independently computed tiles reproduces the untiled
output exactly.  These tests verify it bit-for-bit on hand-built runs and on
randomly generated convolution/pooling stacks (hypothesis), and show that the
DeepThings-style naive padding is *not* lossless, which is the paper's stated
motivation for the reverse tile calculation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.deepthings import FusedTilePartition
from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import VerticalSeparationModule
from repro.graph.builder import GraphBuilder
from repro.tensors.executor import GraphExecutor, WeightStore
from repro.tensors.tiling import execute_fused_tile_stack, run_untiled, run_vsm_plan


def _tile_and_compare(graph, grid=(2, 2), seed=0):
    """Helper: tile the single edge run of ``graph`` and compare to untiled."""
    plan = PlacementPlan.single_tier(graph, Tier.EDGE)
    vsm = VerticalSeparationModule(*grid)
    runs = vsm.find_tileable_runs(graph, plan, Tier.EDGE)
    assert runs, "graph must contain a tileable run"
    run_plan = vsm.plan_run(graph, runs[0])
    rng = np.random.default_rng(seed)
    frame = rng.standard_normal(graph.input_shape)
    executor = GraphExecutor(graph, WeightStore(seed=seed))
    reference = run_untiled(executor, run_plan, frame)
    tiled = run_vsm_plan(executor, run_plan, frame)
    return reference, tiled, run_plan, executor, frame


class TestLosslessUnit:
    def test_same_padding_conv_stack(self):
        builder = GraphBuilder("g", input_shape=(3, 20, 20))
        builder.conv("c1", 6, kernel=3, padding=1)
        builder.conv("c2", 6, kernel=3, padding=1)
        reference, tiled, *_ = _tile_and_compare(builder.build())
        assert np.array_equal(reference, tiled)

    def test_valid_padding_conv(self):
        builder = GraphBuilder("g", input_shape=(3, 21, 21))
        builder.conv("c1", 4, kernel=3, padding=0)
        reference, tiled, *_ = _tile_and_compare(builder.build())
        assert np.array_equal(reference, tiled)

    def test_strided_conv_and_pool(self):
        builder = GraphBuilder("g", input_shape=(3, 32, 32))
        builder.conv("c1", 8, kernel=3, stride=2, padding=1)
        builder.maxpool("p1", kernel=2, stride=2)
        builder.conv("c2", 8, kernel=3, stride=1, padding=1)
        reference, tiled, *_ = _tile_and_compare(builder.build())
        assert np.array_equal(reference, tiled)

    def test_pointwise_layers_in_run(self):
        builder = GraphBuilder("g", input_shape=(3, 24, 24))
        builder.conv("c1", 8, kernel=3, padding=1, bias=False)
        builder.batchnorm("bn1")
        builder.leaky_relu("act1")
        builder.conv("c2", 8, kernel=5, padding=2)
        builder.relu("act2")
        reference, tiled, *_ = _tile_and_compare(builder.build())
        assert np.array_equal(reference, tiled)

    def test_avgpool_with_padding(self):
        builder = GraphBuilder("g", input_shape=(3, 17, 17))
        builder.conv("c1", 4, kernel=3, padding=1)
        builder.avgpool("p1", kernel=3, stride=1, padding=1)
        reference, tiled, *_ = _tile_and_compare(builder.build())
        assert np.array_equal(reference, tiled)

    def test_3x3_grid(self):
        builder = GraphBuilder("g", input_shape=(3, 30, 30))
        builder.conv("c1", 5, kernel=3, padding=1)
        builder.conv("c2", 5, kernel=3, padding=1)
        reference, tiled, *_ = _tile_and_compare(builder.build(), grid=(3, 3))
        assert np.array_equal(reference, tiled)

    def test_individual_tile_shapes_match_plan(self):
        builder = GraphBuilder("g", input_shape=(3, 16, 16))
        builder.conv("c1", 4, kernel=3, padding=1)
        graph = builder.build()
        _, _, run_plan, executor, frame = _tile_and_compare(graph)
        for stack in run_plan.stacks:
            tile = execute_fused_tile_stack(executor, run_plan, stack, frame)
            assert tile.shape[1] == stack.output_region.height
            assert tile.shape[2] == stack.output_region.width

    def test_naive_deepthings_padding_is_lossy(self):
        builder = GraphBuilder("g", input_shape=(3, 24, 24))
        builder.conv("c1", 6, kernel=3, padding=1)
        builder.conv("c2", 6, kernel=3, padding=1)
        graph = builder.build()
        _, _, run_plan, executor, frame = _tile_and_compare(graph)
        stats = FusedTilePartition(2, 2).compare_with_untiled(executor, run_plan, frame)
        assert not stats.is_lossless
        assert stats.max_abs_error > 1e-6
        assert stats.redundancy_factor >= 1.0


@st.composite
def conv_stack_spec(draw):
    """A random stack of convolution / pooling layers plus an input size."""
    input_size = draw(st.integers(min_value=12, max_value=28))
    channels = draw(st.integers(min_value=1, max_value=4))
    num_layers = draw(st.integers(min_value=1, max_value=3))
    layers = []
    for _ in range(num_layers):
        kind = draw(st.sampled_from(["conv", "maxpool", "avgpool", "relu"]))
        kernel = draw(st.sampled_from([1, 2, 3, 5]))
        stride = draw(st.sampled_from([1, 1, 2]))
        padding = draw(st.integers(min_value=0, max_value=min(2, kernel // 2 + 1)))
        out_channels = draw(st.integers(min_value=1, max_value=6))
        layers.append((kind, kernel, stride, padding, out_channels))
    grid = draw(st.sampled_from([(1, 2), (2, 1), (2, 2), (3, 2)]))
    return input_size, channels, layers, grid


@settings(max_examples=40, deadline=None)
@given(spec=conv_stack_spec())
def test_property_random_conv_stacks_are_lossless(spec):
    """Property: for any conv/pool stack geometry, VSM tiling is bit-exact."""
    input_size, channels, layers, grid = spec
    builder = GraphBuilder("prop", input_shape=(channels, input_size, input_size))
    current_size = input_size
    added_geometric = False
    for index, (kind, kernel, stride, padding, out_channels) in enumerate(layers):
        effective = (current_size - kernel + 2 * padding) // stride + 1
        if kind in ("conv", "maxpool", "avgpool") and effective < 2:
            continue  # skip layers that would collapse the feature map
        if kind == "conv":
            builder.conv(f"conv{index}", out_channels, kernel=kernel, stride=stride, padding=padding)
        elif kind == "maxpool":
            builder.maxpool(f"pool{index}", kernel=kernel, stride=stride, padding=min(padding, kernel // 2))
        elif kind == "avgpool":
            builder.avgpool(f"apool{index}", kernel=kernel, stride=stride, padding=min(padding, kernel // 2))
        else:
            builder.relu(f"relu{index}")
            continue
        current_size = (current_size - kernel + 2 * (min(padding, kernel // 2) if kind != "conv" else padding)) // stride + 1
        added_geometric = True
    if not added_geometric:
        builder.conv("conv_final", 2, kernel=3, padding=1)
    graph = builder.build()

    plan = PlacementPlan.single_tier(graph, Tier.EDGE)
    vsm = VerticalSeparationModule(*grid)
    runs = vsm.find_tileable_runs(graph, plan, Tier.EDGE)
    if not runs:
        return
    run_plan = vsm.plan_run(graph, runs[0])
    rng = np.random.default_rng(0)
    frame = rng.standard_normal(graph.input_shape)
    executor = GraphExecutor(graph)
    reference = run_untiled(executor, run_plan, frame)
    tiled = run_vsm_plan(executor, run_plan, frame)
    # Bit-exact for the hand-written cases above; for arbitrary random stacks we
    # allow the last-ulp wiggle room of numpy's buffered reductions on strided
    # views, which is far below any numerical significance ("lossless" in the
    # paper's accuracy sense).
    assert np.allclose(reference, tiled, rtol=1e-9, atol=1e-9)
