"""Tests for the Vertical Separation Module geometry (RTC, fused runs)."""

import pytest

from repro.core.placement import PlacementPlan, Tier
from repro.core.vsm import (
    SpatialParams,
    TileRegion,
    VerticalSeparationModule,
    VSMError,
    reverse_tile_calculation,
)
from repro.graph.builder import GraphBuilder


def make_run_graph():
    builder = GraphBuilder("run", input_shape=(3, 16, 16))
    builder.conv("conv1", 4, kernel=3, stride=1, padding=1)
    builder.conv("conv2", 4, kernel=3, stride=2, padding=1)
    builder.maxpool("pool", kernel=2, stride=2)
    builder.flatten("flatten")
    builder.linear("fc", 10)
    return builder.build()


class TestReverseTileCalculation:
    def test_stride1_no_padding_adds_halo(self):
        params = SpatialParams(kernel=(3, 3), stride=(1, 1), padding=(0, 0))
        out_tile = TileRegion.output_tile(0, 2, 0, 2)
        region = reverse_tile_calculation(params, out_tile, input_height=8, input_width=8)
        assert (region.row_start, region.row_end) == (0, 4)
        assert (region.col_start, region.col_end) == (0, 4)
        assert region.pad_top == region.pad_left == 0

    def test_same_padding_border_tile_needs_padding(self):
        params = SpatialParams(kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        out_tile = TileRegion.output_tile(0, 4, 0, 4)
        region = reverse_tile_calculation(params, out_tile, input_height=8, input_width=8)
        assert region.row_start == 0 and region.col_start == 0
        assert region.pad_top == 1 and region.pad_left == 1
        assert region.pad_bottom == 0 and region.pad_right == 0

    def test_interior_tile_needs_no_padding(self):
        params = SpatialParams(kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        out_tile = TileRegion.output_tile(3, 5, 3, 5)
        region = reverse_tile_calculation(params, out_tile, input_height=10, input_width=10)
        assert region.pad_top == region.pad_bottom == region.pad_left == region.pad_right == 0
        assert (region.row_start, region.row_end) == (2, 6)

    def test_stride2_downsampling(self):
        params = SpatialParams(kernel=(2, 2), stride=(2, 2), padding=(0, 0))
        out_tile = TileRegion.output_tile(0, 2, 2, 4)
        region = reverse_tile_calculation(params, out_tile, input_height=8, input_width=8)
        assert (region.row_start, region.row_end) == (0, 4)
        assert (region.col_start, region.col_end) == (4, 8)

    def test_identity_params_for_pointwise_layers(self):
        params = SpatialParams.identity()
        out_tile = TileRegion.output_tile(1, 3, 2, 5)
        region = reverse_tile_calculation(params, out_tile, input_height=8, input_width=8)
        assert (region.row_start, region.row_end, region.col_start, region.col_end) == (1, 3, 2, 5)

    def test_empty_tile_stays_empty_with_zero_padding(self):
        """An empty output extent consumes no input and charges no padding.

        Border tiles can legitimately become empty mid-run when a downstream
        layer's clamp left them entirely inside the padding (e.g. kernel 1,
        stride 2, padding 1); the RTC must propagate them as empty instead of
        failing the whole plan.
        """
        params = SpatialParams(kernel=(3, 3), stride=(2, 2), padding=(1, 1))
        region = reverse_tile_calculation(params, TileRegion.output_tile(2, 2, 0, 1), 8, 8)
        assert region.height == 0
        assert region.pad_top == 0 and region.pad_bottom == 0
        # The non-empty column axis still follows Equations (4)-(5).
        assert (region.col_start, region.col_end) == (0, 2)
        assert region.width > 0

    def test_unsupported_layer_kind_rejected(self):
        from repro.graph.layers import Linear

        with pytest.raises(VSMError):
            SpatialParams.from_spec(Linear(10))


class TestRunDiscovery:
    def test_finds_conv_run_on_edge(self):
        graph = make_run_graph()
        plan = PlacementPlan.single_tier(graph, Tier.EDGE)
        vsm = VerticalSeparationModule(2, 2)
        runs = vsm.find_tileable_runs(graph, plan, Tier.EDGE)
        assert len(runs) == 1
        assert [v.name for v in runs[0]] == ["conv1", "conv2", "pool"]

    def test_no_runs_on_other_tiers(self):
        graph = make_run_graph()
        plan = PlacementPlan.single_tier(graph, Tier.CLOUD)
        vsm = VerticalSeparationModule(2, 2)
        assert vsm.find_tileable_runs(graph, plan, Tier.EDGE) == []

    def test_branching_breaks_runs(self, resnet18):
        plan = PlacementPlan.single_tier(resnet18, Tier.EDGE)
        vsm = VerticalSeparationModule(2, 2)
        runs = vsm.find_tileable_runs(resnet18, plan, Tier.EDGE)
        # Residual additions are not tileable, so runs never span a whole stage.
        for run in runs:
            assert all(v.kind != "add" for v in run)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            VerticalSeparationModule(0, 2)


class TestRunPlanning:
    def test_output_tiles_partition_output(self):
        graph = make_run_graph()
        plan = PlacementPlan.single_tier(graph, Tier.EDGE)
        vsm = VerticalSeparationModule(2, 2)
        run_plan = vsm.plan_run(graph, vsm.find_tileable_runs(graph, plan)[0])
        run_plan.validate_coverage()
        assert run_plan.num_tiles == 4
        total_area = sum(stack.output_region.area for stack in run_plan.stacks)
        assert total_area == run_plan.output_shape[1] * run_plan.output_shape[2]

    def test_redundancy_factor_at_least_one(self):
        graph = make_run_graph()
        plan = PlacementPlan.single_tier(graph, Tier.EDGE)
        vsm = VerticalSeparationModule(2, 2)
        run_plan = vsm.plan_run(graph, vsm.find_tileable_runs(graph, plan)[0])
        assert run_plan.redundancy_factor() >= 1.0
        assert run_plan.redundancy_factor() < 2.0

    def test_grid_clamped_to_small_outputs(self):
        builder = GraphBuilder("small", input_shape=(3, 4, 4))
        builder.conv("conv1", 4, kernel=3, stride=2, padding=1)  # 2x2 output
        graph = builder.build()
        plan = PlacementPlan.single_tier(graph, Tier.EDGE)
        vsm = VerticalSeparationModule(3, 3)
        run_plan = vsm.plan_run(graph, [graph.vertex("conv1")])
        assert run_plan.num_tiles <= 4

    def test_full_plan_for_model(self, resnet18, clean_profiler, cluster_four_edge, wifi):
        profile = clean_profiler.build_profile_from_measurements(
            resnet18, cluster_four_edge.tier_hardware(), repeats=1
        )
        from repro.core.hpa import HorizontalPartitioner

        placement = HorizontalPartitioner(profile, wifi).partition(resnet18)
        vsm_plan = VerticalSeparationModule(2, 2).plan(resnet18, placement, Tier.EDGE)
        for run in vsm_plan.runs:
            run.validate_coverage()
            assert vsm_plan.covers_vertex(run.vertices[0].index)
        assert vsm_plan.run_for_vertex(-1) is None

    def test_work_fraction_sums_exceed_one_with_overlap(self):
        graph = make_run_graph()
        plan = PlacementPlan.single_tier(graph, Tier.EDGE)
        vsm = VerticalSeparationModule(2, 2)
        run_plan = vsm.plan_run(graph, vsm.find_tileable_runs(graph, plan)[0])
        # First layer overlaps, so the per-tile fractions sum above 1.
        area = run_plan.layer_output_area(0)
        total_fraction = sum(s.work_fraction(0, area) for s in run_plan.stacks)
        assert total_fraction >= 1.0

    def test_empty_run_rejected(self):
        graph = make_run_graph()
        with pytest.raises(VSMError):
            VerticalSeparationModule(2, 2).plan_run(graph, [])
