"""Tests for threshold-guarded dynamic re-partitioning."""

import pytest

from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.placement import Tier
from repro.network.conditions import get_condition


class TestThresholds:
    def test_inside_band_not_exceeded(self):
        thresholds = RepartitionThresholds(lower=0.8, upper=1.25)
        assert not thresholds.exceeded(100.0, 110.0)
        assert not thresholds.exceeded(100.0, 85.0)

    def test_outside_band_exceeded(self):
        thresholds = RepartitionThresholds(lower=0.8, upper=1.25)
        assert thresholds.exceeded(100.0, 130.0)
        assert thresholds.exceeded(100.0, 70.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RepartitionThresholds(lower=0.0)
        with pytest.raises(ValueError):
            RepartitionThresholds(upper=0.9)


class TestDynamicRepartitioner:
    @pytest.fixture()
    def repartitioner(self, alexnet, alexnet_profile, wifi):
        return DynamicRepartitioner(alexnet, alexnet_profile, wifi)

    def test_initial_plan_is_valid(self, repartitioner):
        repartitioner.plan.validate()

    def test_no_drift_no_trigger(self, repartitioner):
        event = repartitioner.observe()
        assert not event.triggered
        assert event.changed_vertices == []
        assert event.latency_before_s == pytest.approx(event.latency_after_s)

    def test_small_drift_stays_quiet(self, repartitioner, alexnet_profile):
        event = repartitioner.observe(profile=alexnet_profile.scaled(Tier.EDGE, 1.1))
        assert not event.triggered

    def test_large_latency_drift_triggers_local_update(self, repartitioner, alexnet_profile):
        event = repartitioner.observe(profile=alexnet_profile.scaled(Tier.EDGE, 3.0))
        assert event.triggered
        assert 0 < event.reevaluated_vertices <= len(repartitioner.graph)
        repartitioner.plan.validate()

    def test_bandwidth_drift_triggers(self, repartitioner):
        congested = get_condition("wifi").scaled_backbone(0.3)
        event = repartitioner.observe(network=congested)
        assert event.triggered
        repartitioner.plan.validate()

    def test_local_update_touches_fewer_vertices_than_full(self, resnet18, resnet_profile, wifi):
        repartitioner = DynamicRepartitioner(resnet18, resnet_profile, wifi)
        # Perturb only the device latencies: the scope should stay local.
        event = repartitioner.observe(profile=resnet_profile.scaled(Tier.DEVICE, 5.0))
        assert event.triggered
        assert event.reevaluated_vertices < len(resnet18)

    def test_full_repartition_reevaluates_everything(self, repartitioner):
        event = repartitioner.full_repartition()
        assert event.reevaluated_vertices == len(repartitioner.graph)
        repartitioner.plan.validate()

    def test_adaptation_never_hurts_much(self, repartitioner, alexnet_profile, wifi):
        """After adapting, the plan is no worse than before under new conditions."""
        slowed = alexnet_profile.scaled(Tier.EDGE, 4.0)
        event = repartitioner.observe(profile=slowed)
        assert event.latency_after_s <= event.latency_before_s * 1.01

    def test_reference_updates_after_trigger(self, repartitioner, alexnet_profile):
        slowed = alexnet_profile.scaled(Tier.EDGE, 3.0)
        repartitioner.observe(profile=slowed)
        # The same conditions observed again should no longer trigger.
        event = repartitioner.observe(profile=slowed)
        assert not event.triggered
