"""Tests for threshold-guarded dynamic re-partitioning."""

import pytest

from repro.core.dynamic import DynamicRepartitioner, RepartitionThresholds
from repro.core.placement import Tier
from repro.network.conditions import get_condition


class TestThresholds:
    def test_inside_band_not_exceeded(self):
        thresholds = RepartitionThresholds(lower=0.8, upper=1.25)
        assert not thresholds.exceeded(100.0, 110.0)
        assert not thresholds.exceeded(100.0, 85.0)

    def test_outside_band_exceeded(self):
        thresholds = RepartitionThresholds(lower=0.8, upper=1.25)
        assert thresholds.exceeded(100.0, 130.0)
        assert thresholds.exceeded(100.0, 70.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RepartitionThresholds(lower=0.0)
        with pytest.raises(ValueError):
            RepartitionThresholds(upper=0.9)


class TestDynamicRepartitioner:
    @pytest.fixture()
    def repartitioner(self, alexnet, alexnet_profile, wifi):
        return DynamicRepartitioner(alexnet, alexnet_profile, wifi)

    def test_initial_plan_is_valid(self, repartitioner):
        repartitioner.plan.validate()

    def test_no_drift_no_trigger(self, repartitioner):
        event = repartitioner.observe()
        assert not event.triggered
        assert event.changed_vertices == []
        assert event.latency_before_s == pytest.approx(event.latency_after_s)

    def test_small_drift_stays_quiet(self, repartitioner, alexnet_profile):
        event = repartitioner.observe(profile=alexnet_profile.scaled(Tier.EDGE, 1.1))
        assert not event.triggered

    def test_large_latency_drift_triggers_local_update(self, repartitioner, alexnet_profile):
        event = repartitioner.observe(profile=alexnet_profile.scaled(Tier.EDGE, 3.0))
        assert event.triggered
        assert 0 < event.reevaluated_vertices <= len(repartitioner.graph)
        repartitioner.plan.validate()

    def test_bandwidth_drift_triggers(self, repartitioner):
        congested = get_condition("wifi").scaled_backbone(0.3)
        event = repartitioner.observe(network=congested)
        assert event.triggered
        repartitioner.plan.validate()

    def test_local_update_touches_fewer_vertices_than_full(self, resnet18, resnet_profile, wifi):
        repartitioner = DynamicRepartitioner(resnet18, resnet_profile, wifi)
        # Perturb only the device latencies: the scope should stay local.
        event = repartitioner.observe(profile=resnet_profile.scaled(Tier.DEVICE, 5.0))
        assert event.triggered
        assert event.reevaluated_vertices < len(resnet18)

    def test_full_repartition_reevaluates_everything(self, repartitioner):
        event = repartitioner.full_repartition()
        assert event.reevaluated_vertices == len(repartitioner.graph)
        repartitioner.plan.validate()

    def test_adaptation_never_hurts_much(self, repartitioner, alexnet_profile, wifi):
        """After adapting, the plan is no worse than before under new conditions."""
        slowed = alexnet_profile.scaled(Tier.EDGE, 4.0)
        event = repartitioner.observe(profile=slowed)
        assert event.latency_after_s <= event.latency_before_s * 1.01

    def test_reference_updates_after_trigger(self, repartitioner, alexnet_profile):
        slowed = alexnet_profile.scaled(Tier.EDGE, 3.0)
        repartitioner.observe(profile=slowed)
        # The same conditions observed again should no longer trigger.
        event = repartitioner.observe(profile=slowed)
        assert not event.triggered


class TestPerLinkDrift:
    """Topology-aware drift: every physical wire is watched individually."""

    def _multi_hop_topology(self, trunk_mbps):
        from repro.network.topology import LinkSpec, NodeSpec, Topology
        from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, RASPBERRY_PI_4

        return Topology(
            "watched",
            nodes=[
                NodeSpec("d0", "device", RASPBERRY_PI_4),
                NodeSpec("gw", "relay"),
                NodeSpec("e0", "edge", EDGE_DESKTOP),
                NodeSpec("c0", "cloud", CLOUD_SERVER),
            ],
            links=[
                LinkSpec("uplink", "d0", "gw", 10.0),
                LinkSpec("trunk", "gw", "e0", trunk_mbps),
                LinkSpec("backbone", "e0", "c0", 30.0),
            ],
        )

    def test_invisible_per_link_drift_still_triggers(self, alexnet, alexnet_profile):
        """A congested fast hop barely moves the harmonic tier-pair rate, but
        the per-link watch catches it."""
        before = self._multi_hop_topology(trunk_mbps=1000.0)
        after = self._multi_hop_topology(trunk_mbps=300.0)  # -70% on one wire
        condition_before = before.planning_condition()
        condition_after = after.planning_condition()
        # The tier-pair view moved by far less than the 25% band...
        ratio = condition_after.device_edge_mbps / condition_before.device_edge_mbps
        assert 0.95 < ratio < 1.0
        repartitioner = DynamicRepartitioner(alexnet, alexnet_profile, condition_before)
        seed = repartitioner.observe_topology(before)
        assert not seed.triggered  # first observation records the reference
        # ...yet the link-level drift is detected.
        event = repartitioner.observe_topology(after)
        assert event.triggered

    def test_within_band_links_do_not_trigger(self, alexnet, alexnet_profile):
        before = self._multi_hop_topology(trunk_mbps=1000.0)
        after = self._multi_hop_topology(trunk_mbps=900.0)  # -10%: inside band
        repartitioner = DynamicRepartitioner(
            alexnet, alexnet_profile, before.planning_condition()
        )
        repartitioner.observe_topology(before)
        assert not repartitioner.observe_topology(after).triggered

    def test_reference_links_update_after_trigger(self, alexnet, alexnet_profile):
        before = self._multi_hop_topology(trunk_mbps=1000.0)
        after = self._multi_hop_topology(trunk_mbps=300.0)
        repartitioner = DynamicRepartitioner(
            alexnet, alexnet_profile, before.planning_condition()
        )
        repartitioner.observe_topology(before)
        assert repartitioner.observe_topology(after).triggered
        # The drifted rates are the new reference: observing them again is calm.
        assert not repartitioner.observe_topology(after).triggered

    def test_inherited_links_drift_with_their_base_condition(
        self, alexnet, alexnet_profile, wifi
    ):
        """An all-inherited topology whose base condition collapses must
        trigger: inherited links are priced against the observed topology's
        own base, not against the stale reference."""
        from repro.network.topology import Topology

        before = Topology.three_tier(num_edge_nodes=4, network=wifi)
        after = Topology.three_tier(num_edge_nodes=4, network=wifi.scaled_backbone(0.3))
        repartitioner = DynamicRepartitioner(alexnet, alexnet_profile, wifi)
        assert not repartitioner.observe_topology(before).triggered  # seed
        assert repartitioner.observe_topology(after).triggered
