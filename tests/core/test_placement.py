"""Tests for the tier model, placement plans and the plan evaluator."""

import pytest

from repro.core.placement import (
    PlacementError,
    PlacementPlan,
    PlanEvaluator,
    Tier,
    TIER_ORDER,
    earliest_tier,
    latest_tier,
    tiers_at_or_after,
)


class TestTierModel:
    def test_order_matches_data_flow(self):
        assert TIER_ORDER == (Tier.DEVICE, Tier.EDGE, Tier.CLOUD)
        assert Tier.DEVICE.position < Tier.EDGE.position < Tier.CLOUD.position

    def test_tiers_at_or_after(self):
        assert tiers_at_or_after(Tier.DEVICE) == [Tier.DEVICE, Tier.EDGE, Tier.CLOUD]
        assert tiers_at_or_after(Tier.EDGE) == [Tier.EDGE, Tier.CLOUD]
        assert tiers_at_or_after(Tier.CLOUD) == [Tier.CLOUD]

    def test_earliest_and_latest(self):
        assert earliest_tier([Tier.CLOUD, Tier.EDGE]) == Tier.EDGE
        assert latest_tier([Tier.DEVICE, Tier.EDGE]) == Tier.EDGE
        with pytest.raises(ValueError):
            earliest_tier([])

    def test_tier_is_string_enum(self):
        assert Tier("edge") == Tier.EDGE
        assert Tier.EDGE.value == "edge"


class TestPlacementPlan:
    def test_single_tier_plan_keeps_input_on_device(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.CLOUD)
        assert plan.tier_of(alexnet.input_vertex.index) == Tier.DEVICE
        assert plan.tier_of(alexnet.vertex("conv1").index) == Tier.CLOUD
        plan.validate()

    def test_tier_counts(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        counts = plan.tier_counts()
        assert counts[Tier.EDGE] == len(alexnet) - 1
        assert counts[Tier.DEVICE] == 1

    def test_cut_edges_single_tier(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        cuts = plan.cut_edges()
        assert len(cuts) == 1  # the raw-input upload
        assert cuts[0][0].name == "input"

    def test_incomplete_plan_fails_validation(self, alexnet):
        plan = PlacementPlan(alexnet)
        plan.assign(0, Tier.DEVICE)
        with pytest.raises(PlacementError):
            plan.validate()

    def test_proposition1_violation_detected(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        # Put a late layer back on the device: its predecessor is on the edge.
        plan.assign(alexnet.vertex("fc1").index, Tier.DEVICE)
        with pytest.raises(PlacementError):
            plan.validate()

    def test_vertices_on(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        assert [v.name for v in plan.vertices_on(Tier.DEVICE)] == ["input"]

    def test_from_mapping_and_copy(self, alexnet):
        mapping = {v.index: Tier.EDGE for v in alexnet}
        mapping[0] = Tier.DEVICE
        plan = PlacementPlan.from_mapping(alexnet, mapping)
        clone = plan.copy()
        clone.assign(alexnet.vertex("fc3").index, Tier.CLOUD)
        assert plan.tier_of(alexnet.vertex("fc3").index) == Tier.EDGE

    def test_describe_mentions_counts(self, alexnet):
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        assert "edge=" in plan.describe()

    def test_tier_of_unassigned_raises(self, alexnet):
        with pytest.raises(PlacementError):
            PlacementPlan(alexnet).tier_of(3)


class TestPlanEvaluator:
    def test_device_only_has_no_transfer(self, alexnet, alexnet_profile, wifi):
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        metrics = evaluator.metrics(PlacementPlan.single_tier(alexnet, Tier.DEVICE))
        assert metrics.transfer_latency_s == 0.0
        assert metrics.bytes_to_cloud == 0
        assert metrics.cut_edge_count == 0

    def test_cloud_only_ships_raw_input(self, alexnet, alexnet_profile, wifi):
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        metrics = evaluator.metrics(PlacementPlan.single_tier(alexnet, Tier.CLOUD))
        assert metrics.bytes_to_cloud == alexnet.input_vertex.output_bytes
        assert metrics.transfer_latency_s == pytest.approx(
            wifi.transfer_seconds(alexnet.input_vertex.output_bytes, "device", "cloud")
        )

    def test_objective_equals_metrics_latency(self, alexnet, alexnet_profile, wifi):
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        assert evaluator.objective(plan) == pytest.approx(
            evaluator.metrics(plan).end_to_end_latency_s
        )

    def test_compute_time_split_by_tier(self, alexnet, alexnet_profile, wifi):
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        plan = PlacementPlan.single_tier(alexnet, Tier.EDGE)
        metrics = evaluator.metrics(plan)
        assert metrics.compute_latency_s[Tier.EDGE] > 0
        assert metrics.compute_latency_s[Tier.CLOUD] == 0.0

    def test_faster_backbone_reduces_cloud_latency(self, alexnet, alexnet_profile):
        from repro.network.conditions import get_condition

        plan = PlacementPlan.single_tier(alexnet, Tier.CLOUD)
        slow = PlanEvaluator(alexnet_profile, get_condition("4g")).objective(plan)
        fast = PlanEvaluator(alexnet_profile, get_condition("optical")).objective(plan)
        assert fast < slow

    def test_megabits_property(self, alexnet, alexnet_profile, wifi):
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        metrics = evaluator.metrics(PlacementPlan.single_tier(alexnet, Tier.CLOUD))
        assert metrics.megabits_to_cloud == pytest.approx(metrics.bytes_to_cloud * 8 / 1e6)
