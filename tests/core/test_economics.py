"""Tests for multi-objective placement economics (weights + tier economics).

The contract under test: the default vector is pure latency and structurally
inert, an all-zero vector is rejected with the typed error, and — because
both the Neurosurgeon split search and the weighted evaluator are exact —
a single-axis weight vector recovers that axis's pure optimum.
"""

import pytest

from repro.core.economics import (
    LATENCY_ONLY,
    InvalidWeightsError,
    ObjectiveWeights,
    TierEconomics,
)
from repro.core.placement import PlanEvaluator, Tier
from repro.network.topology import DEFAULT_TIER_PRICES, Topology
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, RASPBERRY_PI_4


@pytest.fixture(scope="module")
def economics():
    return TierEconomics.from_topology(Topology.three_tier(num_edge_nodes=1))


class TestObjectiveWeights:
    def test_default_is_pure_latency(self):
        weights = ObjectiveWeights()
        assert weights.as_tuple() == (1.0, 0.0, 0.0)
        assert weights.is_latency_only
        assert weights == LATENCY_ONLY

    def test_all_zero_rejected_with_typed_error(self):
        with pytest.raises(InvalidWeightsError):
            ObjectiveWeights(latency=0.0, energy=0.0, cost=0.0)
        # The typed error is a ValueError, so broad pre-existing handlers
        # keep working.
        assert issubclass(InvalidWeightsError, ValueError)

    @pytest.mark.parametrize("axis", ["latency", "energy", "cost"])
    def test_negative_weight_rejected(self, axis):
        with pytest.raises(InvalidWeightsError):
            ObjectiveWeights(**{axis: -0.5})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_weight_rejected(self, bad):
        with pytest.raises(InvalidWeightsError):
            ObjectiveWeights(latency=bad)

    def test_coerce_passes_none_and_instances_through(self):
        assert ObjectiveWeights.coerce(None) is None
        weights = ObjectiveWeights(energy=0.5)
        assert ObjectiveWeights.coerce(weights) is weights

    def test_coerce_accepts_three_sequence(self):
        assert ObjectiveWeights.coerce((0.0, 1.0, 0.0)) == ObjectiveWeights(
            latency=0.0, energy=1.0, cost=0.0
        )
        assert ObjectiveWeights.coerce([1, 2, 3]).as_tuple() == (1.0, 2.0, 3.0)

    def test_coerce_rejects_wrong_arity_and_zero_vector(self):
        with pytest.raises(InvalidWeightsError):
            ObjectiveWeights.coerce((1.0, 2.0))
        with pytest.raises(InvalidWeightsError):
            ObjectiveWeights.coerce((0.0, 0.0, 0.0))

    def test_latency_only_detection(self):
        assert ObjectiveWeights(latency=7.0).is_latency_only
        assert not ObjectiveWeights(energy=1e-9).is_latency_only
        assert not ObjectiveWeights(cost=1e-9).is_latency_only

    def test_combine_is_the_weighted_sum(self):
        weights = ObjectiveWeights(latency=2.0, energy=0.5, cost=1000.0)
        assert weights.combine(0.1, 3.0, 0.002) == pytest.approx(
            2.0 * 0.1 + 0.5 * 3.0 + 1000.0 * 0.002
        )


class TestTierEconomics:
    def test_from_topology_reads_primary_nodes(self, economics):
        assert economics.energy_for("device") == RASPBERRY_PI_4.energy
        assert economics.energy_for(Tier.EDGE) == EDGE_DESKTOP.energy
        assert economics.energy_for(Tier.CLOUD) == CLOUD_SERVER.energy
        assert economics.price_for("device") == DEFAULT_TIER_PRICES["device"]
        assert economics.price_for(Tier.EDGE) == DEFAULT_TIER_PRICES["edge"]
        assert economics.price_for(Tier.CLOUD) == DEFAULT_TIER_PRICES["cloud"]

    def test_compute_joules_and_cost(self, economics):
        flops = 1e9
        assert economics.compute_joules(flops, Tier.CLOUD) == pytest.approx(
            CLOUD_SERVER.energy.joules_per_flop * flops
        )
        assert economics.compute_cost_usd(2.0, Tier.CLOUD) == pytest.approx(
            2.0 * DEFAULT_TIER_PRICES["cloud"]
        )

    def test_transfer_joules_bills_only_device_radio(self, economics):
        payload = 1e6
        device_radio = RASPBERRY_PI_4.energy.radio_joules_per_byte * payload
        assert economics.transfer_joules(payload, Tier.DEVICE, Tier.EDGE) == pytest.approx(device_radio)
        assert economics.transfer_joules(payload, Tier.CLOUD, Tier.DEVICE) == pytest.approx(device_radio)
        assert economics.transfer_joules(payload, Tier.EDGE, Tier.CLOUD) == 0.0
        assert economics.transfer_joules(payload, Tier.EDGE, Tier.EDGE) == 0.0
        assert economics.transfer_joules(payload, Tier.DEVICE, Tier.DEVICE) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TierEconomics(price_per_s=(0.0, 0.0))
        with pytest.raises(ValueError):
            TierEconomics(price_per_s=(0.0, -1.0, 0.0))
        with pytest.raises(ValueError):
            TierEconomics(energy=(0.0, 0.0, 0.0))

    def test_default_is_unmetered(self, economics):
        assert TierEconomics().is_unmetered
        assert not economics.is_unmetered


class TestWeightedEvaluator:
    def test_energy_axes_require_economics(self, alexnet, alexnet_profile, wifi):
        from repro.core.hpa import HorizontalPartitioner

        plan = HorizontalPartitioner(alexnet_profile, wifi).partition(alexnet)
        evaluator = PlanEvaluator(alexnet_profile, wifi)
        with pytest.raises(ValueError):
            evaluator.plan_energy_j(plan)
        with pytest.raises(ValueError):
            evaluator.plan_cost_usd(plan)

    def test_latency_only_objective_unchanged(
        self, alexnet, alexnet_profile, wifi, economics
    ):
        from repro.core.hpa import HorizontalPartitioner

        plan = HorizontalPartitioner(alexnet_profile, wifi).partition(alexnet)
        plain = PlanEvaluator(alexnet_profile, wifi)
        weighted = PlanEvaluator(
            alexnet_profile, wifi, economics=economics, weights=ObjectiveWeights()
        )
        # A latency-only vector keeps the original objective bit-identical.
        assert weighted.objective(plan) == plain.objective(plan)

    def test_weighted_objective_is_the_combination(
        self, alexnet, alexnet_profile, wifi, economics
    ):
        from repro.core.hpa import HorizontalPartitioner

        plan = HorizontalPartitioner(alexnet_profile, wifi).partition(alexnet)
        weights = ObjectiveWeights(latency=1.0, energy=0.25, cost=500.0)
        evaluator = PlanEvaluator(
            alexnet_profile, wifi, economics=economics, weights=weights
        )
        plain = PlanEvaluator(alexnet_profile, wifi)
        assert evaluator.objective(plan) == pytest.approx(
            weights.combine(
                plain.objective(plan),
                evaluator.plan_energy_j(plan),
                evaluator.plan_cost_usd(plan),
            )
        )


class TestSingleAxisOptima:
    """A single-axis weight vector must recover that axis's pure optimum.

    Neurosurgeon's split search enumerates *every* candidate plan, so the
    weighted selection can be checked against a brute-force minimum over the
    same candidates — no other planner offers that exactness guarantee."""

    @pytest.fixture(scope="class")
    def candidates(self, alexnet, alexnet_profile, wifi):
        from repro.baselines.neurosurgeon import NeurosurgeonPartitioner

        return NeurosurgeonPartitioner(alexnet_profile, wifi).candidate_plans(alexnet)

    def _partition(self, alexnet, alexnet_profile, wifi, economics, weights):
        from repro.baselines.neurosurgeon import NeurosurgeonPartitioner

        partitioner = NeurosurgeonPartitioner(
            alexnet_profile, wifi, economics=economics, weights=weights
        )
        return partitioner.partition(alexnet)

    def test_pure_latency_matches_default_search(
        self, alexnet, alexnet_profile, wifi, economics
    ):
        from repro.baselines.neurosurgeon import NeurosurgeonPartitioner

        default = NeurosurgeonPartitioner(alexnet_profile, wifi).partition(alexnet)
        weighted = self._partition(
            alexnet, alexnet_profile, wifi, economics, ObjectiveWeights(latency=1.0)
        )
        assert weighted.split_index == default.split_index
        assert weighted.latency_s == default.latency_s

    def test_pure_energy_recovers_energy_optimum(
        self, alexnet, alexnet_profile, wifi, economics, candidates
    ):
        evaluator = PlanEvaluator(
            alexnet_profile,
            wifi,
            economics=economics,
            weights=ObjectiveWeights(latency=0.0, energy=1.0),
        )
        chosen = self._partition(
            alexnet,
            alexnet_profile,
            wifi,
            economics,
            ObjectiveWeights(latency=0.0, energy=1.0),
        )
        best = min(evaluator.plan_energy_j(plan) for _, plan in candidates)
        assert evaluator.plan_energy_j(chosen.plan) == pytest.approx(best)

    def test_pure_cost_recovers_cost_optimum(
        self, alexnet, alexnet_profile, wifi, economics, candidates
    ):
        evaluator = PlanEvaluator(
            alexnet_profile,
            wifi,
            economics=economics,
            weights=ObjectiveWeights(latency=0.0, cost=1.0),
        )
        chosen = self._partition(
            alexnet,
            alexnet_profile,
            wifi,
            economics,
            ObjectiveWeights(latency=0.0, cost=1.0),
        )
        best = min(evaluator.plan_cost_usd(plan) for _, plan in candidates)
        assert evaluator.plan_cost_usd(chosen.plan) == pytest.approx(best)

    def test_axes_genuinely_disagree(
        self, alexnet, alexnet_profile, wifi, economics, candidates
    ):
        """The sweep is only a meaningful test if the three optima differ."""
        plain = PlanEvaluator(alexnet_profile, wifi)
        metered = PlanEvaluator(
            alexnet_profile,
            wifi,
            economics=economics,
            weights=ObjectiveWeights(latency=0.0, energy=1.0),
        )
        by_latency = min(candidates, key=lambda item: plain.objective(item[1]))
        by_energy = min(candidates, key=lambda item: metered.plan_energy_j(item[1]))
        by_cost = min(candidates, key=lambda item: metered.plan_cost_usd(item[1]))
        splits = {by_latency[0], by_energy[0], by_cost[0]}
        assert len(splits) >= 2


class TestD3ConfigIntegration:
    def test_config_coerces_sequences(self):
        from repro.core.d3 import D3Config

        config = D3Config(objective_weights=(0.0, 1.0, 0.0))
        assert isinstance(config.objective_weights, ObjectiveWeights)
        assert config.objective_weights.as_tuple() == (0.0, 1.0, 0.0)

    def test_config_rejects_zero_vector(self):
        from repro.core.d3 import D3Config

        with pytest.raises(InvalidWeightsError):
            D3Config(objective_weights=(0.0, 0.0, 0.0))

    def test_plan_key_distinguishes_weights(self):
        from repro.core.d3 import D3Config

        default = D3Config()
        weighted = D3Config(objective_weights=(1.0, 0.5, 0.0))
        assert default.plan_key() != weighted.plan_key()

    def test_weighted_system_changes_the_placement(self):
        """End to end: an energy-heavy vector moves FLOPs off the device."""
        from repro.core.d3 import D3Config, D3System
        from repro.models.zoo import build_model

        base = D3System(D3Config(use_regression=False, profiler_noise_std=0.0))
        green = D3System(
            D3Config(
                use_regression=False,
                profiler_noise_std=0.0,
                objective_weights=(0.0, 1.0, 0.0),
            )
        )
        model = build_model("alexnet")
        base_result = base.run(model)
        green_result = green.run(model)
        evaluator = PlanEvaluator(
            green.build_profile(model),
            green.network,
            economics=TierEconomics.from_topology(green.topology),
            weights=ObjectiveWeights(latency=0.0, energy=1.0),
        )
        base_j = evaluator.plan_energy_j(base_result.placement)
        green_j = evaluator.plan_energy_j(green_result.placement)
        assert green_j <= base_j
