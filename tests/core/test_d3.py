"""Tests for the D3 facade."""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.core.placement import Tier


class TestD3Config:
    def test_resolve_network_from_string(self):
        assert D3Config(network="4g").resolve_network().name == "4g"

    def test_resolve_network_passthrough(self, wifi):
        assert D3Config(network=wifi).resolve_network() is wifi


class TestD3System:
    @pytest.fixture(scope="class")
    def system(self):
        return D3System(D3Config(network="wifi", num_edge_nodes=4, profiler_noise_std=0.0))

    @pytest.fixture(scope="class")
    def result(self, system, resnet18):
        return system.run(resnet18)

    def test_result_contains_all_artifacts(self, result):
        assert result.placement.is_complete()
        assert result.profile is not None
        assert result.report.end_to_end_latency_s > 0
        assert result.metrics.end_to_end_latency_s > 0

    def test_placement_valid(self, result):
        result.placement.validate()

    def test_vsm_plan_present_with_multiple_edge_nodes(self, result):
        assert result.vsm_plan is not None
        assert result.vsm_plan.num_runs >= 1

    def test_vsm_disabled_with_single_edge_node(self, resnet18):
        system = D3System(D3Config(network="wifi", num_edge_nodes=1, profiler_noise_std=0.0))
        assert system.run(resnet18).vsm_plan is None

    def test_vsm_speeds_up_edge_runs(self, resnet18):
        hpa_only = D3System(
            D3Config(network="wifi", num_edge_nodes=1, enable_vsm=False, profiler_noise_std=0.0)
        ).run(resnet18)
        with_vsm = D3System(
            D3Config(network="wifi", num_edge_nodes=4, enable_vsm=True, profiler_noise_std=0.0)
        ).run(resnet18)
        assert with_vsm.end_to_end_latency_s < hpa_only.end_to_end_latency_s

    def test_tier_times_keys(self, result):
        times = result.tier_times_ms()
        assert set(times) == {Tier.DEVICE, Tier.EDGE, Tier.CLOUD}

    def test_regression_profile_used_by_default(self, system, resnet18):
        profile = system.build_profile(resnet18)
        assert len(profile) == 3 * len(resnet18)

    def test_measurement_profile_without_regression(self, resnet18):
        system = D3System(D3Config(use_regression=False, profiler_noise_std=0.0))
        profile = system.build_profile(resnet18)
        assert len(profile) == 3 * len(resnet18)

    def test_deterministic_given_seed(self, resnet18):
        a = D3System(D3Config(seed=5, profiler_noise_std=0.02)).run(resnet18)
        b = D3System(D3Config(seed=5, profiler_noise_std=0.02)).run(resnet18)
        assert a.end_to_end_latency_s == pytest.approx(b.end_to_end_latency_s)
