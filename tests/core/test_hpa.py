"""Tests for the Horizontal Partition Algorithm."""

import pytest

from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlacementPlan, PlanEvaluator, Tier
from repro.baselines.single_tier import SingleTierBaseline
from repro.network.conditions import get_condition


@pytest.fixture(scope="module")
def partitioner(alexnet_profile, wifi):
    return HorizontalPartitioner(alexnet_profile, wifi)


class TestConfig:
    def test_invalid_lookahead_rejected(self):
        with pytest.raises(ValueError):
            HPAConfig(lookahead="psychic")

    def test_modes_accepted(self):
        for mode in ("none", "successor", "cumulative"):
            assert HPAConfig(lookahead=mode).lookahead == mode


class TestWeightHelpers:
    def test_transfer_zero_within_tier(self, partitioner):
        assert partitioner.transfer_latency(10**6, Tier.EDGE, Tier.EDGE) == 0.0

    def test_transfer_matches_condition(self, partitioner, wifi):
        expected = wifi.transfer_seconds(10**6, "device", "edge")
        assert partitioner.transfer_latency(10**6, Tier.DEVICE, Tier.EDGE) == pytest.approx(expected)

    def test_vertex_latency_reads_profile(self, partitioner, alexnet, alexnet_profile):
        vertex = alexnet.vertex("conv1")
        assert partitioner.vertex_latency(vertex, Tier.CLOUD) == alexnet_profile.get(
            vertex.index, Tier.CLOUD
        )


class TestProposition1:
    def test_potential_tiers_follow_predecessors(self, partitioner, alexnet):
        plan = PlacementPlan(alexnet)
        plan.assign(0, Tier.DEVICE)
        conv1 = alexnet.vertex("conv1")
        assert partitioner.potential_tiers(alexnet, plan, conv1) == [
            Tier.DEVICE,
            Tier.EDGE,
            Tier.CLOUD,
        ]
        plan.assign(0, Tier.EDGE)
        assert partitioner.potential_tiers(alexnet, plan, conv1) == [Tier.EDGE, Tier.CLOUD]
        plan.assign(0, Tier.CLOUD)
        assert partitioner.potential_tiers(alexnet, plan, conv1) == [Tier.CLOUD]

    @pytest.mark.parametrize("model_fixture", ["alexnet", "resnet18", "small_inception"])
    def test_partition_respects_proposition1(self, model_fixture, request, clean_profiler,
                                              cluster_one_edge, wifi):
        graph = request.getfixturevalue(model_fixture)
        profile = clean_profiler.build_profile_from_measurements(
            graph, cluster_one_edge.tier_hardware(), repeats=1
        )
        plan = HorizontalPartitioner(profile, wifi).partition(graph)
        plan.validate()  # raises on any Proposition-1 violation

    def test_input_vertex_always_on_device(self, partitioner, alexnet):
        plan = partitioner.partition(alexnet)
        assert plan.tier_of(alexnet.input_vertex.index) == Tier.DEVICE


class TestPartitionQuality:
    @pytest.mark.parametrize("network", ["wifi", "4g", "5g", "optical"])
    def test_hpa_not_worse_than_best_single_tier(self, alexnet, alexnet_profile, network):
        condition = get_condition(network)
        plan = HorizontalPartitioner(alexnet_profile, condition).partition(alexnet)
        hpa_latency = PlanEvaluator(alexnet_profile, condition).objective(plan)
        single = SingleTierBaseline(alexnet_profile, condition)
        best_single = min(single.all_latencies_s(alexnet).values())
        assert hpa_latency <= best_single * 1.01

    def test_hpa_much_faster_than_device_only(self, resnet18, resnet_profile, wifi):
        plan = HorizontalPartitioner(resnet_profile, wifi).partition(resnet18)
        hpa_latency = PlanEvaluator(resnet_profile, wifi).objective(plan)
        device_only = SingleTierBaseline(resnet_profile, wifi).latency_s(resnet18, Tier.DEVICE)
        assert device_only / hpa_latency > 3.0

    def test_lookahead_modes_produce_valid_plans(self, alexnet, alexnet_profile, wifi):
        for mode in ("none", "successor", "cumulative"):
            config = HPAConfig(lookahead=mode)
            plan = HorizontalPartitioner(alexnet_profile, wifi, config).partition(alexnet)
            plan.validate()

    def test_cumulative_not_worse_than_pure_greedy(self, resnet18, resnet_profile, wifi):
        evaluator = PlanEvaluator(resnet_profile, wifi)
        greedy = HorizontalPartitioner(resnet_profile, wifi, HPAConfig(lookahead="none"))
        cumulative = HorizontalPartitioner(resnet_profile, wifi, HPAConfig(lookahead="cumulative"))
        assert evaluator.objective(cumulative.partition(resnet18)) <= evaluator.objective(
            greedy.partition(resnet18)
        ) * 1.01

    def test_sis_update_counts_changes(self, small_inception, clean_profiler, cluster_one_edge, wifi):
        profile = clean_profiler.build_profile_from_measurements(
            small_inception, cluster_one_edge.tier_hardware(), repeats=1
        )
        partitioner = HorizontalPartitioner(profile, wifi)
        plan = partitioner.partition(small_inception)
        plan.validate()

    def test_largest_direct_successor(self, partitioner, alexnet):
        conv1 = alexnet.vertex("conv1")
        successor = partitioner.largest_direct_successor(alexnet, conv1)
        assert successor is not None
        assert successor.index in {s.index for s in alexnet.successors(conv1.index)}

    def test_no_successor_returns_none(self, partitioner, alexnet):
        last = alexnet.output_vertices()[-1]
        assert partitioner.largest_direct_successor(alexnet, last) is None
