"""End-to-end serving acceptance: 100 Poisson requests of VGG-16 over Wi-Fi.

The headline claim of the serving engine: a 100-request stream runs through
``D3System.serve`` with exactly one HPA+VSM partitioning (99 plan-cache hits),
reports percentile latency and throughput, shows queueing delay at high
arrival rates and collapses to the one-shot latency at low rates.
"""

import pytest

from repro.core.d3 import D3Config, D3System
from repro.runtime.workload import Workload


@pytest.fixture(scope="module")
def system():
    return D3System(
        D3Config(
            network="wifi",
            num_edge_nodes=4,
            tile_grid=(2, 2),
            use_regression=False,
            profiler_noise_std=0.0,
        )
    )


@pytest.fixture(scope="module")
def high_rate_report(system):
    workload = Workload.poisson("vgg16", num_requests=100, rate_rps=8.0, seed=0)
    return system.serve(workload)


class TestServingAcceptance:
    def test_all_requests_served_with_percentiles(self, high_rate_report):
        assert high_rate_report.num_requests == 100
        pct = high_rate_report.latency_percentiles()
        assert set(pct) == {"p50", "p95", "p99"}
        assert 0 < pct["p50"] <= pct["p95"] <= pct["p99"]
        assert high_rate_report.throughput_rps > 0

    def test_exactly_one_partitioning(self, high_rate_report):
        assert high_rate_report.plans_computed == 1
        assert high_rate_report.cache_misses == 1
        assert high_rate_report.cache_hits == 99
        assert high_rate_report.repartitions == 0

    def test_high_rate_shows_queueing(self, high_rate_report):
        queueing = high_rate_report.mean_queueing_delay_s()
        assert queueing is not None and queueing > 0
        ideal = high_rate_report.records[0].ideal_latency_s
        assert high_rate_report.latency_percentiles()["p95"] > ideal

    def test_low_rate_matches_one_shot(self, system):
        workload = Workload.poisson("vgg16", num_requests=20, rate_rps=0.05, seed=1)
        report = system.serve(workload)
        ideal = report.records[0].ideal_latency_s
        assert report.latency_percentiles()["p50"] == pytest.approx(ideal, rel=0.02)
        queueing = report.mean_queueing_delay_s()
        assert queueing == pytest.approx(0.0, abs=ideal * 0.05)

    def test_vsm_parallelism_active_under_serving(self, high_rate_report):
        from repro.core.placement import Tier

        record = high_rate_report.records[0]
        edge_nodes = {
            event.node
            for event in record.report.events
            if event.tier == Tier.EDGE and event.kind == "compute"
        }
        assert len(edge_nodes) == 4
