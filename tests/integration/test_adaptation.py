"""Acceptance test for predictive adaptation: look-ahead must pay for itself.

The claim the tentpole makes is behavioural, not structural: under a seeded
bandwidth drift, forecast-driven repartitioning responds *sooner* (lower
adaptation lag) and keeps the mid-drift tail *lower* (mid-drift p99) than the
purely reactive band rule, at the cost of some speculative churn — which must
be visible in the report rather than hidden.  Both cells run the identical
deterministic workload on fresh systems, so every delta below is attributable
to the trigger rule alone.
"""

import pytest

from repro.experiments.adaptation import (
    AGGRESSIVENESS,
    AdaptationScenario,
    _adaptation_lag_s,
    _mid_drift_p99_ms,
    run_adaptation_cell,
)


class TestPredictiveBeatsReactive:
    @pytest.fixture(scope="class")
    def scenario(self):
        return AdaptationScenario()

    @pytest.fixture(scope="class")
    def cells(self, scenario):
        return {
            (label, mode): run_adaptation_cell(scenario, floor, mode)
            for label, floor in AGGRESSIVENESS
            for mode in ("reactive", "predictive")
        }

    @pytest.mark.parametrize("label", [label for label, _ in AGGRESSIVENESS])
    def test_predictive_has_lower_adaptation_lag(self, scenario, cells, label):
        reactive = _adaptation_lag_s(cells[(label, "reactive")], scenario)
        predictive = _adaptation_lag_s(cells[(label, "predictive")], scenario)
        assert reactive is not None and predictive is not None
        assert predictive < reactive

    @pytest.mark.parametrize("label", [label for label, _ in AGGRESSIVENESS])
    def test_predictive_has_lower_mid_drift_p99(self, scenario, cells, label):
        reactive = _mid_drift_p99_ms(cells[(label, "reactive")], scenario)
        predictive = _mid_drift_p99_ms(cells[(label, "predictive")], scenario)
        assert predictive < reactive

    def test_predictive_triggers_are_proactive(self, cells):
        for (_, mode), report in cells.items():
            if mode == "predictive":
                assert report.proactive_repartitions > 0
            else:
                assert report.proactive_repartitions == 0

    def test_mispredict_churn_is_reported_not_hidden(self, cells):
        """At least one predictive cell pays speculative churn — the cost
        axis the table must surface for the trade to be honest."""
        assert any(
            report.forecast_mispredicts > 0
            for (_, mode), report in cells.items()
            if mode == "predictive"
        )

    def test_both_modes_serve_everything(self, scenario, cells):
        for report in cells.values():
            assert report.num_completed == scenario.num_requests
            assert report.num_failed == 0
