"""End-to-end integration tests across every model and network condition,
plus hypothesis property tests on the partitioning invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.single_tier import SingleTierBaseline
from repro.core.d3 import D3Config, D3System
from repro.core.hpa import HPAConfig, HorizontalPartitioner
from repro.core.placement import PlanEvaluator, Tier
from repro.models.zoo import PAPER_MODELS, build_model
from repro.network.conditions import get_condition, list_conditions
from repro.profiling.profiler import Profiler
from repro.runtime.cluster import Cluster


@pytest.mark.parametrize("model", PAPER_MODELS)
@pytest.mark.parametrize("network", ["wifi", "4g"])
def test_d3_end_to_end_every_model(model, network):
    """D3 runs end-to-end for every paper model and is never slower than the
    best single-tier deployment under the same conditions."""
    kwargs = {"num_a": 2, "num_b": 2, "num_c": 1} if model == "inception_v4" else {}
    graph = build_model(model, **kwargs)
    system = D3System(D3Config(network=network, num_edge_nodes=4, profiler_noise_std=0.0))
    result = system.run(graph)
    result.placement.validate()
    assert result.end_to_end_latency_s > 0

    single = SingleTierBaseline(result.profile, result.network)
    best_single = min(single.all_latencies_s(graph).values())
    assert result.end_to_end_latency_s <= best_single * 1.01


@pytest.mark.parametrize("network", list_conditions())
def test_hpa_across_all_network_conditions(network, resnet18, resnet_profile):
    condition = get_condition(network)
    plan = HorizontalPartitioner(resnet_profile, condition).partition(resnet18)
    plan.validate()
    latency = PlanEvaluator(resnet_profile, condition).objective(plan)
    device_only = SingleTierBaseline(resnet_profile, condition).latency_s(resnet18, Tier.DEVICE)
    assert latency < device_only


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #
_MODEL_STRATEGY = st.sampled_from(["alexnet", "resnet18"])
_NETWORK_STRATEGY = st.sampled_from(["wifi", "4g", "5g", "optical"])


@settings(max_examples=20, deadline=None)
@given(
    model=_MODEL_STRATEGY,
    network=_NETWORK_STRATEGY,
    device_scale=st.floats(min_value=0.25, max_value=4.0),
    edge_scale=st.floats(min_value=0.25, max_value=4.0),
    lookahead=st.sampled_from(["none", "successor", "cumulative"]),
    sis=st.booleans(),
)
def test_property_hpa_plans_always_valid_and_competitive(
    model, network, device_scale, edge_scale, lookahead, sis
):
    """For any hardware drift, network condition and heuristic configuration,
    HPA produces a Proposition-1-valid plan that never loses to the best
    single-tier deployment by more than a rounding error."""
    graph = build_model(model)
    cluster = Cluster.build(network=network, num_edge_nodes=1)
    profiler = Profiler(noise_std=0.0)
    profile = profiler.build_profile_from_measurements(graph, cluster.tier_hardware(), repeats=1)
    profile = profile.scaled(Tier.DEVICE, device_scale).scaled(Tier.EDGE, edge_scale)
    condition = get_condition(network)

    config = HPAConfig(lookahead=lookahead, enable_sis_update=sis)
    plan = HorizontalPartitioner(profile, condition, config).partition(graph)
    plan.validate()

    if lookahead == "cumulative":
        latency = PlanEvaluator(profile, condition).objective(plan)
        best_single = min(SingleTierBaseline(profile, condition).all_latencies_s(graph).values())
        assert latency <= best_single * 1.05


@settings(max_examples=15, deadline=None)
@given(
    network=_NETWORK_STRATEGY,
    backbone_scale=st.floats(min_value=0.2, max_value=5.0),
)
def test_property_backbone_traffic_never_exceeds_cloud_only(network, backbone_scale, alexnet):
    """D3 never ships more bytes over the backbone than the cloud-only baseline,
    under any backbone bandwidth."""
    condition = get_condition(network).scaled_backbone(backbone_scale)
    cluster = Cluster.build(network=condition, num_edge_nodes=1)
    profiler = Profiler(noise_std=0.0)
    profile = profiler.build_profile_from_measurements(alexnet, cluster.tier_hardware(), repeats=1)
    plan = HorizontalPartitioner(profile, condition).partition(alexnet)
    evaluator = PlanEvaluator(profile, condition)
    hpa_bytes = evaluator.metrics(plan).bytes_to_cloud
    cloud_only_bytes = alexnet.input_vertex.output_bytes
    assert hpa_bytes <= cloud_only_bytes
