"""Tests for hardware capability presets."""

import pytest

from repro.profiling.hardware import (
    CLOUD_SERVER,
    EDGE_DESKTOP,
    EnergyModel,
    HardwareSpec,
    JETSON_NANO,
    RASPBERRY_PI_4,
    TIER_PRESETS,
    UNMETERED,
)


class TestHardwareSpec:
    def test_effective_gflops_prefers_gpu(self):
        assert CLOUD_SERVER.effective_gflops == CLOUD_SERVER.gpu_gflops

    def test_effective_gflops_cpu_only(self):
        assert EDGE_DESKTOP.effective_gflops == EDGE_DESKTOP.cpu_gflops

    def test_has_gpu(self):
        assert CLOUD_SERVER.has_gpu and JETSON_NANO.has_gpu
        assert not RASPBERRY_PI_4.has_gpu and not EDGE_DESKTOP.has_gpu

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=0, gpu_gflops=0, memory_bandwidth_gbps=1, memory_gb=1)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=1, gpu_gflops=-1, memory_bandwidth_gbps=1, memory_gb=1)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=1, gpu_gflops=0, memory_bandwidth_gbps=0, memory_gb=1)

    def test_scaled(self):
        slower = EDGE_DESKTOP.scaled(0.5)
        assert slower.cpu_gflops == pytest.approx(EDGE_DESKTOP.cpu_gflops * 0.5)
        assert slower.memory_gb == EDGE_DESKTOP.memory_gb

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EDGE_DESKTOP.scaled(0)
        with pytest.raises(ValueError):
            EDGE_DESKTOP.scaled(0.5, bandwidth_factor=0)

    def test_scaled_scales_memory_bandwidth(self):
        """A load spike contends for the memory system, not just the ALUs."""
        slower = EDGE_DESKTOP.scaled(0.5)
        assert slower.memory_bandwidth_gbps == pytest.approx(
            EDGE_DESKTOP.memory_bandwidth_gbps * 0.5
        )

    def test_scaled_bandwidth_factor_decouples(self):
        governor = EDGE_DESKTOP.scaled(0.5, bandwidth_factor=1.0)
        assert governor.cpu_gflops == pytest.approx(EDGE_DESKTOP.cpu_gflops * 0.5)
        assert governor.memory_bandwidth_gbps == EDGE_DESKTOP.memory_bandwidth_gbps

    def test_scaled_preserves_energy_model(self):
        assert RASPBERRY_PI_4.scaled(0.5).energy is RASPBERRY_PI_4.energy


class TestScaledRoofline:
    """The bug this PR fixes: ``scaled()`` left ``memory_bandwidth_gbps``
    untouched, so memory-bound layers were immune to load spikes under the
    roofline cost model — a half-speed node served AlexNet's FC layers at
    full speed."""

    def test_memory_bound_layer_slows_under_load_spike(self):
        from repro.models.zoo import build_model
        from repro.profiling.cost_model import AnalyticCostModel

        graph = build_model("alexnet")
        fc1 = next(v for v in graph if v.name == "fc1")
        base = AnalyticCostModel(RASPBERRY_PI_4).layer_cost(graph, fc1)
        assert base.memory_seconds > base.compute_seconds  # genuinely memory-bound

        spiked = AnalyticCostModel(RASPBERRY_PI_4.scaled(0.5)).layer_cost(graph, fc1)
        assert spiked.memory_seconds == pytest.approx(base.memory_seconds * 2.0)
        # The old behaviour is still reachable — and visibly faster — via an
        # explicit bandwidth_factor, which is what made the bug silent.
        old = AnalyticCostModel(
            RASPBERRY_PI_4.scaled(0.5, bandwidth_factor=1.0)
        ).layer_cost(graph, fc1)
        assert old.memory_seconds == pytest.approx(base.memory_seconds)
        assert spiked.total_seconds > old.total_seconds


class TestEnergyModel:
    def test_default_is_unmetered(self):
        spec = HardwareSpec("bare", cpu_gflops=1, gpu_gflops=0, memory_bandwidth_gbps=1, memory_gb=1)
        assert spec.energy == UNMETERED
        assert spec.energy.compute_joules(1e9) == 0.0
        assert spec.energy.radio_joules(1e6) == 0.0
        assert spec.energy.idle_watts == 0.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            EnergyModel(joules_per_flop=-1e-9)
        with pytest.raises(ValueError):
            EnergyModel(radio_joules_per_byte=-1e-9)
        with pytest.raises(ValueError):
            EnergyModel(idle_watts=-1.0)

    def test_rejects_non_energy_model(self):
        with pytest.raises(ValueError):
            HardwareSpec(
                "bad", cpu_gflops=1, gpu_gflops=0, memory_bandwidth_gbps=1,
                memory_gb=1, energy=0.5,
            )

    def test_active_watts_matches_compute_joules(self):
        model = RASPBERRY_PI_4.energy
        gflops = RASPBERRY_PI_4.effective_gflops
        # Running flat out for one second executes gflops*1e9 FLOPs: the two
        # accountings of that second must agree.
        assert model.active_watts(gflops) == pytest.approx(
            model.compute_joules(gflops * 1e9)
        )

    def test_presets_are_metered_and_ordered(self):
        for spec in (RASPBERRY_PI_4, JETSON_NANO, EDGE_DESKTOP, CLOUD_SERVER):
            assert spec.energy.joules_per_flop > 0
            assert spec.energy.idle_watts > 0
        # Efficiency improves device -> edge -> cloud (J/FLOP falls)...
        assert (
            JETSON_NANO.energy.joules_per_flop
            > EDGE_DESKTOP.energy.joules_per_flop
            > CLOUD_SERVER.energy.joules_per_flop
        )
        # ...while only the radio-equipped device tier pays per-byte energy.
        assert RASPBERRY_PI_4.energy.radio_joules_per_byte > 0
        assert JETSON_NANO.energy.radio_joules_per_byte > 0
        assert EDGE_DESKTOP.energy.radio_joules_per_byte == 0
        assert CLOUD_SERVER.energy.radio_joules_per_byte == 0


class TestTierOrdering:
    """Compute capability must increase device -> edge -> cloud (section III-A)."""

    def test_capability_increases_across_tiers(self):
        assert (
            TIER_PRESETS["device"].effective_gflops
            < TIER_PRESETS["edge"].effective_gflops
            < TIER_PRESETS["cloud"].effective_gflops
        )

    def test_presets_cover_all_tiers(self):
        assert set(TIER_PRESETS) == {"device", "edge", "cloud"}

    def test_device_is_most_memory_constrained(self):
        assert TIER_PRESETS["device"].memory_gb <= TIER_PRESETS["edge"].memory_gb
        assert TIER_PRESETS["edge"].memory_gb <= TIER_PRESETS["cloud"].memory_gb
