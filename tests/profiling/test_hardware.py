"""Tests for hardware capability presets."""

import pytest

from repro.profiling.hardware import (
    CLOUD_SERVER,
    EDGE_DESKTOP,
    HardwareSpec,
    JETSON_NANO,
    RASPBERRY_PI_4,
    TIER_PRESETS,
)


class TestHardwareSpec:
    def test_effective_gflops_prefers_gpu(self):
        assert CLOUD_SERVER.effective_gflops == CLOUD_SERVER.gpu_gflops

    def test_effective_gflops_cpu_only(self):
        assert EDGE_DESKTOP.effective_gflops == EDGE_DESKTOP.cpu_gflops

    def test_has_gpu(self):
        assert CLOUD_SERVER.has_gpu and JETSON_NANO.has_gpu
        assert not RASPBERRY_PI_4.has_gpu and not EDGE_DESKTOP.has_gpu

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=0, gpu_gflops=0, memory_bandwidth_gbps=1, memory_gb=1)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=1, gpu_gflops=-1, memory_bandwidth_gbps=1, memory_gb=1)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cpu_gflops=1, gpu_gflops=0, memory_bandwidth_gbps=0, memory_gb=1)

    def test_scaled(self):
        slower = EDGE_DESKTOP.scaled(0.5)
        assert slower.cpu_gflops == pytest.approx(EDGE_DESKTOP.cpu_gflops * 0.5)
        assert slower.memory_gb == EDGE_DESKTOP.memory_gb

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EDGE_DESKTOP.scaled(0)


class TestTierOrdering:
    """Compute capability must increase device -> edge -> cloud (section III-A)."""

    def test_capability_increases_across_tiers(self):
        assert (
            TIER_PRESETS["device"].effective_gflops
            < TIER_PRESETS["edge"].effective_gflops
            < TIER_PRESETS["cloud"].effective_gflops
        )

    def test_presets_cover_all_tiers(self):
        assert set(TIER_PRESETS) == {"device", "edge", "cloud"}

    def test_device_is_most_memory_constrained(self):
        assert TIER_PRESETS["device"].memory_gb <= TIER_PRESETS["edge"].memory_gb
        assert TIER_PRESETS["edge"].memory_gb <= TIER_PRESETS["cloud"].memory_gb
