"""Tests for the latency regression model and feature extraction."""

import numpy as np
import pytest

from repro.models.zoo import build_model
from repro.profiling.features import FEATURE_NAMES, LayerFeatureExtractor
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP
from repro.profiling.profiler import Profiler
from repro.profiling.regression import LatencyRegressionModel, RegressionReport


class TestFeatureExtraction:
    def test_feature_vector_length(self, alexnet):
        extractor = LayerFeatureExtractor()
        features = extractor.extract(alexnet, alexnet.vertex("conv1"), EDGE_DESKTOP)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_features_finite_for_all_layers(self, resnet18):
        extractor = LayerFeatureExtractor()
        matrix = extractor.extract_graph(resnet18, CLOUD_SERVER)
        assert matrix.shape == (len(resnet18), len(FEATURE_NAMES))
        assert np.all(np.isfinite(matrix))

    def test_hardware_features_differ(self, alexnet):
        extractor = LayerFeatureExtractor()
        edge = extractor.extract(alexnet, alexnet.vertex("conv1"), EDGE_DESKTOP)
        cloud = extractor.extract(alexnet, alexnet.vertex("conv1"), CLOUD_SERVER)
        assert not np.array_equal(edge, cloud)


class TestRegressionModel:
    @pytest.fixture(scope="class")
    def fitted(self):
        profiler = Profiler(noise_std=0.02, seed=1)
        graphs = [build_model("vgg16"), build_model("resnet18")]
        samples = profiler.collect_training_samples(graphs, [EDGE_DESKTOP, CLOUD_SERVER], repeats=2)
        return LatencyRegressionModel().fit(samples)

    def test_unfitted_model_raises(self, alexnet):
        with pytest.raises(RuntimeError):
            LatencyRegressionModel().predict_layer(alexnet, alexnet.vertex("conv1"), EDGE_DESKTOP)

    def test_fit_requires_samples(self):
        with pytest.raises(ValueError):
            LatencyRegressionModel().fit([])

    def test_predictions_nonnegative(self, fitted, alexnet):
        for vertex in alexnet:
            assert fitted.predict_layer(alexnet, vertex, EDGE_DESKTOP) >= 0.0

    def test_cpu_predictions_track_measurements(self, fitted, alexnet):
        """Fig. 4a: predicted per-layer latencies track the actual ones."""
        profiler = Profiler(noise_std=0.0, seed=0)
        actual = profiler.measure_graph(alexnet, EDGE_DESKTOP, repeats=1)
        report = fitted.report(alexnet, EDGE_DESKTOP, actual, kinds=("conv", "linear", "maxpool"))
        assert report.mean_absolute_percentage_error < 0.25
        assert report.r_squared > 0.9

    def test_predict_graph_covers_all_vertices(self, fitted, alexnet):
        predictions = fitted.predict_graph(alexnet, CLOUD_SERVER)
        assert set(predictions) == {v.index for v in alexnet}


class TestRegressionReport:
    def test_perfect_fit_metrics(self):
        report = RegressionReport(["a", "b"], [1.0, 2.0], [1.0, 2.0])
        assert report.mean_absolute_error == 0.0
        assert report.r_squared == pytest.approx(1.0)

    def test_mape(self):
        report = RegressionReport(["a"], [2.0], [1.0])
        assert report.mean_absolute_percentage_error == pytest.approx(0.5)

    def test_rows(self):
        report = RegressionReport(["a"], [1.0], [1.5])
        assert report.rows() == [("a", 1.0, 1.5)]
