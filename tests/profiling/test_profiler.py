"""Tests for the profiler and latency profiles."""

import pytest

from repro.core.placement import Tier
from repro.profiling.cost_model import AnalyticCostModel
from repro.profiling.hardware import EDGE_DESKTOP
from repro.profiling.profiler import LatencyProfile, Profiler


class TestProfilerMeasurements:
    def test_zero_noise_matches_cost_model(self, alexnet):
        profiler = Profiler(noise_std=0.0)
        model = AnalyticCostModel(EDGE_DESKTOP)
        vertex = alexnet.vertex("conv2")
        samples = profiler.measure_layer(alexnet, vertex, EDGE_DESKTOP, repeats=3)
        for sample in samples:
            assert sample.latency_seconds == pytest.approx(model.layer_latency(alexnet, vertex))

    def test_noise_is_reproducible_with_seed(self, alexnet):
        a = Profiler(noise_std=0.1, seed=7).measure_graph(alexnet, EDGE_DESKTOP, repeats=2)
        b = Profiler(noise_std=0.1, seed=7).measure_graph(alexnet, EDGE_DESKTOP, repeats=2)
        assert a == b

    def test_noise_changes_with_seed(self, alexnet):
        a = Profiler(noise_std=0.1, seed=1).measure_graph(alexnet, EDGE_DESKTOP, repeats=1)
        b = Profiler(noise_std=0.1, seed=2).measure_graph(alexnet, EDGE_DESKTOP, repeats=1)
        assert a != b

    def test_invalid_arguments(self, alexnet):
        with pytest.raises(ValueError):
            Profiler(noise_std=-1)
        with pytest.raises(ValueError):
            Profiler().measure_layer(alexnet, alexnet.vertex("conv1"), EDGE_DESKTOP, repeats=0)

    def test_bandwidth_observation(self):
        profiler = Profiler(seed=0)
        assert profiler.observe_bandwidth(100.0) == 100.0
        assert profiler.observe_bandwidth(100.0, jitter_std=0.1) != 100.0
        with pytest.raises(ValueError):
            profiler.observe_bandwidth(0.0)


class TestLatencyProfile:
    def test_profile_from_measurements_covers_all_tiers(self, alexnet, cluster_one_edge):
        profiler = Profiler(noise_std=0.0)
        profile = profiler.build_profile_from_measurements(
            alexnet, cluster_one_edge.tier_hardware(), repeats=1
        )
        assert len(profile) == 3 * len(alexnet)
        for vertex in alexnet:
            assert set(profile.tiers_for(vertex.index)) == {"device", "edge", "cloud"}

    def test_device_latencies_dominate(self, alexnet_profile, alexnet):
        for vertex in alexnet:
            if vertex.kind != "conv":
                continue
            assert alexnet_profile.get(vertex.index, Tier.DEVICE) > alexnet_profile.get(
                vertex.index, Tier.CLOUD
            )

    def test_get_accepts_enum_and_string(self, alexnet_profile):
        assert alexnet_profile.get(1, Tier.EDGE) == alexnet_profile.get(1, "edge")

    def test_get_unknown_raises(self, alexnet_profile):
        with pytest.raises(KeyError):
            alexnet_profile.get(10_000, "edge")

    def test_set_rejects_negative(self):
        profile = LatencyProfile("m")
        with pytest.raises(ValueError):
            profile.set(0, "edge", -1.0)

    def test_tier_total(self, alexnet_profile, alexnet):
        total = alexnet_profile.tier_total(Tier.EDGE)
        manual = sum(alexnet_profile.get(v.index, Tier.EDGE) for v in alexnet)
        assert total == pytest.approx(manual)

    def test_scaled_only_affects_target_tier(self, alexnet_profile):
        scaled = alexnet_profile.scaled(Tier.EDGE, 2.0)
        assert scaled.get(1, Tier.EDGE) == pytest.approx(2 * alexnet_profile.get(1, Tier.EDGE))
        assert scaled.get(1, Tier.CLOUD) == pytest.approx(alexnet_profile.get(1, Tier.CLOUD))

    def test_scaled_rejects_nonpositive(self, alexnet_profile):
        with pytest.raises(ValueError):
            alexnet_profile.scaled(Tier.EDGE, 0.0)

    def test_regression_profile_close_to_measured(self, alexnet, cluster_one_edge):
        profiler = Profiler(noise_std=0.0, seed=0)
        samples = profiler.collect_training_samples(
            [alexnet], list(cluster_one_edge.tier_hardware().values()), repeats=1
        )
        from repro.profiling.regression import LatencyRegressionModel

        regression = LatencyRegressionModel().fit(samples)
        measured = profiler.build_profile_from_measurements(
            alexnet, cluster_one_edge.tier_hardware(), repeats=1
        )
        predicted = profiler.build_profile_from_regression(
            alexnet, cluster_one_edge.tier_hardware(), regression
        )
        # Whole-model totals must agree well when trained on the same model.
        for tier in ("device", "edge", "cloud"):
            assert predicted.tier_total(tier) == pytest.approx(measured.tier_total(tier), rel=0.2)
