"""Tests for the analytic cost model (the simulated testbed)."""

import pytest

from repro.profiling.cost_model import AnalyticCostModel, per_layer_table
from repro.profiling.hardware import CLOUD_SERVER, EDGE_DESKTOP, RASPBERRY_PI_4


class TestLayerCost:
    def test_total_is_roofline_plus_overhead(self, alexnet):
        model = AnalyticCostModel(EDGE_DESKTOP)
        cost = model.layer_cost(alexnet, alexnet.vertex("conv2"))
        assert cost.total_seconds == pytest.approx(
            max(cost.compute_seconds, cost.memory_seconds) + cost.overhead_seconds
        )

    def test_input_vertex_has_no_overhead(self, alexnet):
        model = AnalyticCostModel(EDGE_DESKTOP)
        cost = model.layer_cost(alexnet, alexnet.input_vertex)
        assert cost.overhead_seconds == 0.0

    def test_conv_is_compute_bound_on_slow_device(self, alexnet):
        model = AnalyticCostModel(RASPBERRY_PI_4)
        cost = model.layer_cost(alexnet, alexnet.vertex("conv3"))
        assert cost.compute_seconds > cost.memory_seconds

    def test_gpu_node_requires_gpu(self):
        with pytest.raises(ValueError):
            AnalyticCostModel(EDGE_DESKTOP, use_gpu=True)


class TestOrderings:
    """Properties the partitioning algorithms rely on."""

    def test_device_slower_than_edge_slower_than_cloud(self, alexnet):
        device = AnalyticCostModel(RASPBERRY_PI_4).total_latency(alexnet)
        edge = AnalyticCostModel(EDGE_DESKTOP).total_latency(alexnet)
        cloud = AnalyticCostModel(CLOUD_SERVER).total_latency(alexnet)
        assert device > edge > cloud

    def test_conv_layers_dominate_vgg_latency(self):
        from repro.models.zoo import build_model

        graph = build_model("vgg16")
        rows = per_layer_table(graph, RASPBERRY_PI_4)
        conv_latency = sum(r.total_seconds for r in rows if r.kind == "conv")
        total_latency = sum(r.total_seconds for r in rows)
        assert conv_latency / total_latency > 0.8

    def test_latency_scales_inversely_with_throughput(self, alexnet):
        fast = AnalyticCostModel(EDGE_DESKTOP.scaled(2.0))
        slow = AnalyticCostModel(EDGE_DESKTOP)
        vertex = alexnet.vertex("conv2")
        assert fast.layer_latency(alexnet, vertex) < slow.layer_latency(alexnet, vertex)

    def test_graph_latencies_cover_every_vertex(self, resnet18):
        latencies = AnalyticCostModel(EDGE_DESKTOP).graph_latencies(resnet18)
        assert set(latencies) == {v.index for v in resnet18}
        assert all(value >= 0 for value in latencies.values())


class TestTiledLatency:
    def test_quarter_tile_is_cheaper_but_not_free(self, alexnet):
        model = AnalyticCostModel(EDGE_DESKTOP)
        vertex = alexnet.vertex("conv3")
        full = model.layer_latency(alexnet, vertex)
        tile = model.tiled_conv_latency(alexnet, vertex, tile_input_elements=25, full_input_elements=100)
        assert tile < full
        assert tile > 0

    def test_full_fraction_matches_layer_latency(self, alexnet):
        model = AnalyticCostModel(EDGE_DESKTOP)
        vertex = alexnet.vertex("conv3")
        assert model.tiled_conv_latency(alexnet, vertex, 100, 100) == pytest.approx(
            model.layer_latency(alexnet, vertex)
        )

    def test_rejects_bad_fraction(self, alexnet):
        model = AnalyticCostModel(EDGE_DESKTOP)
        with pytest.raises(ValueError):
            model.tiled_conv_latency(alexnet, alexnet.vertex("conv3"), 10, 0)


class TestPerLayerTable:
    def test_kind_filter(self, alexnet):
        rows = per_layer_table(alexnet, RASPBERRY_PI_4, kinds=("conv",))
        assert len(rows) == 5
        assert all(r.kind == "conv" for r in rows)
